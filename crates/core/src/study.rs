//! Study-level configuration: scales, seeds and the oracle/extracted data
//! source switch shared by every experiment.

use webstruct_corpus::domain::{Attribute, Domain};
use webstruct_corpus::entity::{CatalogConfig, EntityCatalog};
use webstruct_corpus::page::PageConfig;
use webstruct_corpus::web::{Web, WebConfig};
use webstruct_extract::{train_review_classifier, Extractor};
use webstruct_util::ids::EntityId;
use webstruct_util::rng::Seed;

/// Where the (site, entity) occurrence tables come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// Ground-truth relations straight from the generative model. Fast;
    /// used for the full-scale figures.
    Oracle,
    /// Render every page and run the full extraction pipeline (phone/ISBN
    /// scanners, href matching, Naïve Bayes review classification). Slower
    /// but exercises the entire system; the equivalence of the two sources
    /// is itself a tested property.
    Extracted,
}

/// Global experiment configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Root seed for all randomness.
    pub seed: Seed,
    /// Scale factor on entity counts, site counts and traffic volumes.
    /// `1.0` is the documented reproduction scale (see EXPERIMENTS.md).
    pub scale: f64,
    /// Occurrence-table source.
    pub source: DataSource,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: Seed::DEFAULT,
            scale: 1.0,
            source: DataSource::Oracle,
        }
    }
}

impl StudyConfig {
    /// A configuration scaled down for fast tests and benches.
    #[must_use]
    pub fn quick() -> Self {
        StudyConfig {
            seed: Seed::DEFAULT,
            scale: 0.05,
            source: DataSource::Oracle,
        }
    }

    /// Builder: set the data source.
    #[must_use]
    pub fn with_source(mut self, source: DataSource) -> Self {
        self.source = source;
        self
    }

    /// Builder: set the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: Seed) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set the scale.
    ///
    /// # Panics
    /// Panics unless `scale > 0`.
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }
}

/// Reference entity-count per domain at scale 1.0. The paper's absolute
/// counts (1.4M books, millions of businesses) are scaled to laptop size;
/// relative proportions (libraries are scarce, retail plentiful) are kept.
#[must_use]
pub fn reference_entity_count(domain: Domain) -> usize {
    match domain {
        Domain::Books => 30_000,
        Domain::Restaurants => 20_000,
        Domain::Automotive => 15_000,
        Domain::Banks => 10_000,
        Domain::Libraries => 4_000,
        Domain::Schools => 12_000,
        Domain::HotelsLodging => 8_000,
        Domain::RetailShopping => 25_000,
        Domain::HomeGarden => 20_000,
    }
}

/// A fully generated domain: catalog plus web.
#[derive(Debug)]
pub struct DomainStudy {
    /// The domain.
    pub domain: Domain,
    /// The reference entity database.
    pub catalog: EntityCatalog,
    /// The generated web.
    pub web: Web,
    /// Memoised full-text extraction result, keyed by the seed it was
    /// rendered with (rendering + extraction is by far the most expensive
    /// step, and several experiments ask for different attributes of the
    /// same extracted web). A `Mutex` rather than `RefCell` so a
    /// `DomainStudy` can be shared across experiment threads.
    extracted_cache: std::sync::Mutex<Option<(Seed, std::sync::Arc<webstruct_extract::ExtractedWeb>)>>,
}

impl DomainStudy {
    /// Generate the catalog and web for `domain` under `config`.
    #[must_use]
    pub fn generate(domain: Domain, config: &StudyConfig) -> Self {
        let n_entities =
            ((reference_entity_count(domain) as f64 * config.scale).round() as usize).max(64);
        let catalog_cfg = CatalogConfig::new(domain, n_entities);
        let catalog = EntityCatalog::generate(&catalog_cfg, config.seed);
        let web_cfg = WebConfig::preset(domain).scaled(config.scale);
        let web = Web::generate(&catalog, &web_cfg, config.seed);
        DomainStudy {
            domain,
            catalog,
            web,
            extracted_cache: std::sync::Mutex::new(None),
        }
    }

    /// The per-site entity lists for `attr`, via the configured source.
    ///
    /// For [`DataSource::Extracted`] this renders every page of the web and
    /// runs the full pipeline (including classifier training when reviews
    /// are requested).
    #[must_use]
    pub fn occurrence_lists(&self, attr: Attribute, config: &StudyConfig) -> Vec<Vec<EntityId>> {
        match config.source {
            DataSource::Oracle => self.web.occurrence_lists(attr),
            DataSource::Extracted => self.extracted(config).occurrence_lists(attr),
        }
    }

    /// Per-site review-page lists via the configured source.
    #[must_use]
    pub fn review_page_lists(
        &self,
        config: &StudyConfig,
    ) -> Vec<Vec<(EntityId, u32)>> {
        match config.source {
            DataSource::Oracle => self.web.review_page_lists(),
            DataSource::Extracted => self.extracted(config).review_page_lists(),
        }
    }

    fn extracted(&self, config: &StudyConfig) -> std::sync::Arc<webstruct_extract::ExtractedWeb> {
        // Compute under the lock: concurrent callers for the same seed
        // block on one render rather than racing to do it twice.
        let mut cache = self.extracted_cache.lock().expect("extracted cache poisoned");
        if let Some((seed, cached)) = cache.as_ref() {
            if *seed == config.seed {
                return std::sync::Arc::clone(cached);
            }
        }
        let mut extractor = Extractor::new(&self.catalog);
        if self.domain.has_attribute(Attribute::Review) {
            let clf = train_review_classifier(config.seed.derive("nb"), 300)
                .expect("training set is balanced by construction");
            extractor = extractor.with_review_classifier(clf);
        }
        // Site-sharded parallel render+extract; bit-identical to the
        // sequential stream at any worker count (WEBSTRUCT_THREADS=1
        // forces the sequential path).
        let extracted = std::sync::Arc::new(extractor.extract_web(
            &self.web,
            &PageConfig::default(),
            config.seed.derive("render"),
            webstruct_util::par::num_threads(),
        ));
        *cache = Some((config.seed, std::sync::Arc::clone(&extracted)));
        extracted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_small() {
        let cfg = StudyConfig::quick();
        assert!(cfg.scale < 0.1);
        assert_eq!(cfg.source, DataSource::Oracle);
    }

    #[test]
    fn builders_apply() {
        let cfg = StudyConfig::default()
            .with_scale(0.5)
            .with_seed(Seed(9))
            .with_source(DataSource::Extracted);
        assert_eq!(cfg.scale, 0.5);
        assert_eq!(cfg.seed, Seed(9));
        assert_eq!(cfg.source, DataSource::Extracted);
    }

    #[test]
    fn generate_respects_scale() {
        let small = DomainStudy::generate(Domain::Banks, &StudyConfig::quick());
        assert_eq!(
            small.catalog.len(),
            (reference_entity_count(Domain::Banks) as f64 * 0.05).round() as usize
        );
        assert!(small.web.n_sites() > 0);
    }

    #[test]
    fn oracle_and_extracted_sources_agree() {
        let cfg = StudyConfig::quick().with_scale(0.02);
        let study = DomainStudy::generate(Domain::Banks, &cfg);
        let oracle = study.occurrence_lists(Attribute::Phone, &cfg);
        let extracted = study.occurrence_lists(
            Attribute::Phone,
            &cfg.clone().with_source(DataSource::Extracted),
        );
        assert_eq!(oracle, extracted);
    }

    #[test]
    fn entity_floor_is_enforced() {
        let cfg = StudyConfig::default().with_scale(1e-9);
        let study = DomainStudy::generate(Domain::Libraries, &cfg);
        assert_eq!(study.catalog.len(), 64);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = StudyConfig::default().with_scale(0.0);
    }
}
