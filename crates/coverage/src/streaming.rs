//! Incremental k-coverage: the online counterpart of [`crate::kcov`],
//! for consumers that discover sites one at a time (e.g. the budgeted
//! crawler in `webstruct-crawl`) and want coverage-so-far without
//! re-scanning history.

use webstruct_util::ids::EntityId;

/// Online k-coverage accumulator.
///
/// Sites are ingested in *arrival* order (unlike the batch analysis,
/// which sorts by size); the caller decides the order, which is exactly
/// the point for crawler-policy evaluation.
#[derive(Debug, Clone)]
pub struct StreamingCoverage {
    max_k: u8,
    counts: Vec<u8>,
    /// `reached[k]` = number of entities present on >= k ingested sites.
    reached: Vec<usize>,
    sites_ingested: usize,
    scratch: Vec<EntityId>,
}

impl StreamingCoverage {
    /// New accumulator over `n_entities` with coverage tracked for
    /// `k = 1..=max_k`.
    ///
    /// # Panics
    /// Panics when `n_entities == 0` or `max_k == 0` or `max_k > 255`.
    #[must_use]
    pub fn new(n_entities: usize, max_k: usize) -> Self {
        assert!(n_entities > 0, "entity universe must be non-empty");
        assert!((1..=255).contains(&max_k), "max_k must be in 1..=255");
        StreamingCoverage {
            max_k: max_k as u8,
            counts: vec![0; n_entities],
            reached: vec![0; max_k + 1],
            sites_ingested: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of entities in the universe.
    #[must_use]
    pub fn n_entities(&self) -> usize {
        self.counts.len()
    }

    /// Sites ingested so far.
    #[must_use]
    pub fn sites_ingested(&self) -> usize {
        self.sites_ingested
    }

    /// Ingest one site's entity list (duplicates within the list count
    /// once).
    ///
    /// # Panics
    /// Panics when an entity id is out of range.
    pub fn add_site(&mut self, entities: &[EntityId]) {
        self.scratch.clear();
        self.scratch.extend_from_slice(entities);
        self.scratch.sort_unstable();
        self.scratch.dedup();
        for e in &self.scratch {
            let c = &mut self.counts[e.index()];
            if *c < self.max_k {
                *c += 1;
                self.reached[usize::from(*c)] += 1;
            }
        }
        self.sites_ingested += 1;
    }

    /// Current k-coverage (fraction of entities on >= k ingested sites).
    ///
    /// # Panics
    /// Panics when `k` is 0 or above `max_k`.
    #[must_use]
    pub fn coverage(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= usize::from(self.max_k), "k out of range");
        self.reached[k] as f64 / self.counts.len() as f64
    }

    /// All coverages `k = 1..=max_k` at once.
    #[must_use]
    pub fn coverages(&self) -> Vec<f64> {
        (1..=usize::from(self.max_k)).map(|k| self.coverage(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcov::k_coverage;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    #[test]
    fn incremental_counts_match_expectations() {
        let mut sc = StreamingCoverage::new(4, 3);
        assert_eq!(sc.coverage(1), 0.0);
        sc.add_site(&[e(0), e(1)]);
        assert_eq!(sc.coverage(1), 0.5);
        assert_eq!(sc.coverage(2), 0.0);
        sc.add_site(&[e(1), e(2)]);
        assert_eq!(sc.coverage(1), 0.75);
        assert_eq!(sc.coverage(2), 0.25);
        assert_eq!(sc.sites_ingested(), 2);
        assert_eq!(sc.coverages(), vec![0.75, 0.25, 0.0]);
    }

    #[test]
    fn duplicates_within_site_count_once() {
        let mut sc = StreamingCoverage::new(2, 2);
        sc.add_site(&[e(0), e(0), e(0)]);
        assert_eq!(sc.coverage(1), 0.5);
        assert_eq!(sc.coverage(2), 0.0);
    }

    #[test]
    fn counts_saturate_at_max_k() {
        let mut sc = StreamingCoverage::new(1, 2);
        for _ in 0..10 {
            sc.add_site(&[e(0)]);
        }
        assert_eq!(sc.coverage(1), 1.0);
        assert_eq!(sc.coverage(2), 1.0);
    }

    #[test]
    fn matches_batch_when_fed_in_size_order() {
        // Feeding sites in the batch analysis's order must yield the same
        // final coverages.
        let sites: Vec<Vec<EntityId>> = vec![
            vec![e(0), e(1), e(2), e(3)],
            vec![e(1), e(2)],
            vec![e(2)],
            vec![],
        ];
        let batch = k_coverage(5, &sites, 3).unwrap();
        let mut sc = StreamingCoverage::new(5, 3);
        for &s in &batch.site_order {
            sc.add_site(&sites[s]);
        }
        for k in 1..=3 {
            let final_batch = *batch.curves[k - 1].last().unwrap();
            assert!(
                (sc.coverage(k) - final_batch).abs() < 1e-12,
                "k={k}: streaming {} vs batch {}",
                sc.coverage(k),
                final_batch
            );
        }
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn k_zero_rejected() {
        let sc = StreamingCoverage::new(2, 2);
        let _ = sc.coverage(0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_universe_rejected() {
        let _ = StreamingCoverage::new(0, 1);
    }
}
