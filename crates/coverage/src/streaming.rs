//! Incremental k-coverage: the online counterpart of [`crate::kcov`],
//! for consumers that discover sites one at a time (e.g. the budgeted
//! crawler in `webstruct-crawl`) and want coverage-so-far without
//! re-scanning history.

use webstruct_util::ids::EntityId;

/// Online k-coverage accumulator.
///
/// Sites are ingested in *arrival* order (unlike the batch analysis,
/// which sorts by size); the caller decides the order, which is exactly
/// the point for crawler-policy evaluation.
#[derive(Debug, Clone)]
pub struct StreamingCoverage {
    max_k: u8,
    counts: Vec<u8>,
    /// `reached[k]` = number of entities present on >= k ingested sites.
    reached: Vec<usize>,
    sites_ingested: usize,
    scratch: Vec<EntityId>,
}

impl StreamingCoverage {
    /// New accumulator over `n_entities` with coverage tracked for
    /// `k = 1..=max_k`.
    ///
    /// # Panics
    /// Panics when `n_entities == 0` or `max_k == 0` or `max_k > 255`.
    #[must_use]
    pub fn new(n_entities: usize, max_k: usize) -> Self {
        assert!(n_entities > 0, "entity universe must be non-empty");
        assert!((1..=255).contains(&max_k), "max_k must be in 1..=255");
        StreamingCoverage {
            max_k: max_k as u8,
            counts: vec![0; n_entities],
            reached: vec![0; max_k + 1],
            sites_ingested: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of entities in the universe.
    #[must_use]
    pub fn n_entities(&self) -> usize {
        self.counts.len()
    }

    /// Sites ingested so far.
    #[must_use]
    pub fn sites_ingested(&self) -> usize {
        self.sites_ingested
    }

    /// Ingest one site's entity list (duplicates within the list count
    /// once).
    ///
    /// # Panics
    /// Panics when an entity id is out of range.
    pub fn add_site(&mut self, entities: &[EntityId]) {
        self.scratch.clear();
        self.scratch.extend_from_slice(entities);
        self.scratch.sort_unstable();
        self.scratch.dedup();
        for e in &self.scratch {
            let c = &mut self.counts[e.index()];
            if *c < self.max_k {
                *c += 1;
                self.reached[usize::from(*c)] += 1;
            }
        }
        self.sites_ingested += 1;
    }

    /// Fold another accumulator over the same entity universe into this
    /// one — the spill-friendly path for sharded runs: each shard ingests
    /// its own sites into a private accumulator and the owner merges the
    /// partials, so no per-page (or per-site-list) state ever crosses
    /// shard boundaries.
    ///
    /// Per-entity counts add with saturation at `max_k`, which is exact:
    /// both inputs are themselves saturated minima, and
    /// `min(k, min(k,a) + min(k,b)) == min(k, a + b)` for all `a, b`. The
    /// `reached` table is rebuilt from the merged counts, so merging is
    /// commutative and associative — shard order cannot change the result.
    ///
    /// # Panics
    /// Panics when the accumulators disagree on the entity universe or
    /// `max_k`.
    pub fn merge(&mut self, other: &StreamingCoverage) {
        assert_eq!(
            self.n_entities(),
            other.n_entities(),
            "entity universe mismatch"
        );
        assert_eq!(self.max_k, other.max_k, "max_k mismatch");
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            let sum = u16::from(*c) + u16::from(o);
            *c = sum.min(u16::from(self.max_k)) as u8;
        }
        self.sites_ingested += other.sites_ingested;
        for r in &mut self.reached {
            *r = 0;
        }
        for &c in &self.counts {
            for k in 1..=usize::from(c) {
                self.reached[k] += 1;
            }
        }
    }

    /// Current k-coverage (fraction of entities on >= k ingested sites).
    ///
    /// # Panics
    /// Panics when `k` is 0 or above `max_k`.
    #[must_use]
    pub fn coverage(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= usize::from(self.max_k), "k out of range");
        self.reached[k] as f64 / self.counts.len() as f64
    }

    /// All coverages `k = 1..=max_k` at once.
    #[must_use]
    pub fn coverages(&self) -> Vec<f64> {
        (1..=usize::from(self.max_k)).map(|k| self.coverage(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcov::k_coverage;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    #[test]
    fn incremental_counts_match_expectations() {
        let mut sc = StreamingCoverage::new(4, 3);
        assert_eq!(sc.coverage(1), 0.0);
        sc.add_site(&[e(0), e(1)]);
        assert_eq!(sc.coverage(1), 0.5);
        assert_eq!(sc.coverage(2), 0.0);
        sc.add_site(&[e(1), e(2)]);
        assert_eq!(sc.coverage(1), 0.75);
        assert_eq!(sc.coverage(2), 0.25);
        assert_eq!(sc.sites_ingested(), 2);
        assert_eq!(sc.coverages(), vec![0.75, 0.25, 0.0]);
    }

    #[test]
    fn duplicates_within_site_count_once() {
        let mut sc = StreamingCoverage::new(2, 2);
        sc.add_site(&[e(0), e(0), e(0)]);
        assert_eq!(sc.coverage(1), 0.5);
        assert_eq!(sc.coverage(2), 0.0);
    }

    #[test]
    fn counts_saturate_at_max_k() {
        let mut sc = StreamingCoverage::new(1, 2);
        for _ in 0..10 {
            sc.add_site(&[e(0)]);
        }
        assert_eq!(sc.coverage(1), 1.0);
        assert_eq!(sc.coverage(2), 1.0);
    }

    #[test]
    fn matches_batch_when_fed_in_size_order() {
        // Feeding sites in the batch analysis's order must yield the same
        // final coverages.
        let sites: Vec<Vec<EntityId>> = vec![
            vec![e(0), e(1), e(2), e(3)],
            vec![e(1), e(2)],
            vec![e(2)],
            vec![],
        ];
        let batch = k_coverage(5, &sites, 3).unwrap();
        let mut sc = StreamingCoverage::new(5, 3);
        for &s in &batch.site_order {
            sc.add_site(&sites[s]);
        }
        for k in 1..=3 {
            let final_batch = *batch.curves[k - 1].last().unwrap();
            assert!(
                (sc.coverage(k) - final_batch).abs() < 1e-12,
                "k={k}: streaming {} vs batch {}",
                sc.coverage(k),
                final_batch
            );
        }
    }

    #[test]
    fn merged_shard_partials_equal_sequential_ingestion() {
        let sites: Vec<Vec<EntityId>> = vec![
            vec![e(0), e(1), e(2), e(3)],
            vec![e(1), e(2)],
            vec![e(2), e(4)],
            vec![e(0)],
            vec![],
            vec![e(2), e(2), e(3)],
        ];
        let mut sequential = StreamingCoverage::new(5, 3);
        for s in &sites {
            sequential.add_site(s);
        }
        // Shard the sites three ways, merge in a *different* order than
        // arrival — the result must not care.
        let mut a = StreamingCoverage::new(5, 3);
        let mut b = StreamingCoverage::new(5, 3);
        let mut c = StreamingCoverage::new(5, 3);
        a.add_site(&sites[0]);
        a.add_site(&sites[1]);
        b.add_site(&sites[2]);
        b.add_site(&sites[3]);
        c.add_site(&sites[4]);
        c.add_site(&sites[5]);
        let mut merged = StreamingCoverage::new(5, 3);
        merged.merge(&c);
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.sites_ingested(), sequential.sites_ingested());
        assert_eq!(merged.coverages(), sequential.coverages());
    }

    #[test]
    fn merge_saturates_exactly() {
        // Entity 0 appears on 3 sites in each shard; max_k = 2 saturates
        // both partials, and the merge must behave as min(2, 3+3).
        let mut a = StreamingCoverage::new(2, 2);
        let mut b = StreamingCoverage::new(2, 2);
        for _ in 0..3 {
            a.add_site(&[e(0)]);
            b.add_site(&[e(0)]);
        }
        let mut sequential = StreamingCoverage::new(2, 2);
        for _ in 0..6 {
            sequential.add_site(&[e(0)]);
        }
        a.merge(&b);
        assert_eq!(a.coverages(), sequential.coverages());
        assert_eq!(a.sites_ingested(), 6);
    }

    #[test]
    #[should_panic(expected = "max_k mismatch")]
    fn merge_rejects_mismatched_k() {
        let mut a = StreamingCoverage::new(2, 2);
        let b = StreamingCoverage::new(2, 3);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn k_zero_rejected() {
        let sc = StreamingCoverage::new(2, 2);
        let _ = sc.coverage(0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_universe_rejected() {
        let _ = StreamingCoverage::new(0, 1);
    }
}
