//! k-coverage analysis (§3.3 of the paper).
//!
//! > "Given a set of websites W and a positive integer k, we define the
//! > k-coverage of W as the fraction of entities in the database that are
//! > present in at least k different websites in W."
//!
//! The paper plots, for each t, the k-coverage of the top-t sites (ordered
//! by the number of entities they contain), for k = 1..10.

use webstruct_util::ids::EntityId;
use webstruct_util::report::{Figure, Series};
use webstruct_util::stats::log_ticks;

/// Error type for coverage computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverageError {
    /// The entity universe is empty.
    NoEntities,
    /// `max_k` must be at least 1.
    ZeroK,
    /// An occurrence list referenced an entity outside `0..n_entities`.
    EntityOutOfRange {
        /// The offending entity id.
        entity: u32,
        /// The declared universe size.
        n_entities: usize,
    },
}

impl std::fmt::Display for CoverageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverageError::NoEntities => write!(f, "entity universe is empty"),
            CoverageError::ZeroK => write!(f, "max_k must be >= 1"),
            CoverageError::EntityOutOfRange { entity, n_entities } => {
                write!(f, "entity id {entity} out of range (n = {n_entities})")
            }
        }
    }
}

impl std::error::Error for CoverageError {}

/// Result of a k-coverage sweep.
#[derive(Debug, Clone)]
pub struct KCoverage {
    /// The swept values of t (top-t sites), log-spaced, ending at the
    /// number of non-empty sites.
    pub ticks: Vec<usize>,
    /// `curves[k-1][i]` = k-coverage of the top-`ticks[i]` sites.
    pub curves: Vec<Vec<f64>>,
    /// Number of sites with at least one occurrence.
    pub n_nonempty_sites: usize,
    /// The site ordering used (indices into the input slice, descending by
    /// occurrence count; empty sites excluded).
    pub site_order: Vec<usize>,
}

impl KCoverage {
    /// Coverage of the top-t sites for a given k (interpolating between
    /// swept ticks; exact at tick positions).
    ///
    /// # Panics
    /// Panics when `k` is 0 or greater than the computed `max_k`.
    #[must_use]
    pub fn coverage_at(&self, k: usize, t: usize) -> f64 {
        assert!(k >= 1 && k <= self.curves.len(), "k out of range");
        let curve = &self.curves[k - 1];
        match self.ticks.binary_search(&t) {
            Ok(i) => curve[i],
            Err(0) => 0.0,
            Err(i) if i >= self.ticks.len() => *curve.last().expect("non-empty ticks"),
            Err(i) => {
                // Linear interpolation in t between surrounding ticks.
                let (t0, y0) = (self.ticks[i - 1] as f64, curve[i - 1]);
                let (t1, y1) = (self.ticks[i] as f64, curve[i]);
                y0 + (y1 - y0) * (t as f64 - t0) / (t1 - t0)
            }
        }
    }

    /// Smallest swept t whose k-coverage reaches `target`, or `None`.
    #[must_use]
    pub fn sites_needed(&self, k: usize, target: f64) -> Option<usize> {
        assert!(k >= 1 && k <= self.curves.len(), "k out of range");
        let curve = &self.curves[k - 1];
        curve
            .iter()
            .position(|&c| c >= target)
            .map(|i| self.ticks[i])
    }

    /// Render as a paper-style figure: one series per k, log-x.
    #[must_use]
    pub fn to_figure(&self, id: &str, title: &str) -> Figure {
        let mut fig = Figure::new(id, title)
            .with_axes("top-t sites", "k-coverage")
            .with_log_x();
        for (ki, curve) in self.curves.iter().enumerate() {
            let points: Vec<(f64, f64)> = self
                .ticks
                .iter()
                .zip(curve)
                .map(|(&t, &c)| (t as f64, c))
                .collect();
            fig.push(Series::new(format!("k={}", ki + 1), points));
        }
        fig
    }
}

/// Compute k-coverage curves for `k = 1..=max_k`.
///
/// `site_entities[s]` lists the entities present on site `s` (duplicates
/// are tolerated and counted once). Sites are ordered by size descending,
/// ties broken by site index for determinism; empty sites are excluded
/// (they can never affect coverage).
///
/// Complexity: `O(E + S log S + ticks·max_k)` where `E` is total
/// occurrences.
///
/// # Errors
/// See [`CoverageError`].
pub fn k_coverage(
    n_entities: usize,
    site_entities: &[Vec<EntityId>],
    max_k: usize,
) -> Result<KCoverage, CoverageError> {
    if n_entities == 0 {
        return Err(CoverageError::NoEntities);
    }
    if max_k == 0 {
        return Err(CoverageError::ZeroK);
    }
    for list in site_entities {
        for e in list {
            if e.index() >= n_entities {
                return Err(CoverageError::EntityOutOfRange {
                    entity: e.raw(),
                    n_entities,
                });
            }
        }
    }
    // Order sites by distinct-entity count descending. Duplicates within a
    // site must not inflate its size; the deduped lists are kept so the
    // sweep below does not repeat the sort/dedup work.
    let dedup: Vec<Vec<EntityId>> = site_entities
        .iter()
        .map(|list| {
            let mut v = list.clone();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let mut site_order: Vec<usize> = (0..dedup.len())
        .filter(|&s| !dedup[s].is_empty())
        .collect();
    site_order.sort_by(|&a, &b| dedup[b].len().cmp(&dedup[a].len()).then(a.cmp(&b)));

    let n_nonempty = site_order.len();
    let ticks = if n_nonempty == 0 {
        vec![]
    } else {
        log_ticks(n_nonempty)
    };
    let max_k_u8 = u8::try_from(max_k.min(255)).expect("max_k clamped");
    let mut counts = vec![0u8; n_entities];
    let mut reached = vec![0usize; max_k + 1]; // reached[k] = #entities with count >= k
    let mut curves = vec![Vec::with_capacity(ticks.len()); max_k];

    let mut tick_iter = ticks.iter().copied().peekable();
    for (processed, &s) in site_order.iter().enumerate() {
        for &e in &dedup[s] {
            let c = &mut counts[e.index()];
            if *c < max_k_u8 {
                *c += 1;
                reached[usize::from(*c)] += 1;
            }
        }
        while tick_iter.peek() == Some(&(processed + 1)) {
            tick_iter.next();
            for k in 1..=max_k {
                curves[k - 1].push(reached[k] as f64 / n_entities as f64);
            }
        }
    }
    Ok(KCoverage {
        ticks,
        curves,
        n_nonempty_sites: n_nonempty,
        site_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    #[test]
    fn single_site_full_coverage() {
        let sites = vec![vec![e(0), e(1), e(2)]];
        let cov = k_coverage(3, &sites, 2).unwrap();
        assert_eq!(cov.ticks, vec![1]);
        assert_eq!(cov.curves[0], vec![1.0]); // k=1: all covered
        assert_eq!(cov.curves[1], vec![0.0]); // k=2: nothing twice
        assert_eq!(cov.n_nonempty_sites, 1);
    }

    #[test]
    fn k2_requires_two_sites() {
        let sites = vec![vec![e(0), e(1)], vec![e(0)], vec![e(1)]];
        let cov = k_coverage(2, &sites, 2).unwrap();
        // Order: site0 (2), then site1, site2 (ties by index).
        assert_eq!(cov.site_order, vec![0, 1, 2]);
        assert_eq!(cov.ticks, vec![1, 2, 3]);
        assert_eq!(cov.curves[0], vec![1.0, 1.0, 1.0]);
        assert_eq!(cov.curves[1], vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn duplicates_within_site_count_once() {
        let sites = vec![vec![e(0), e(0), e(0)], vec![e(1)]];
        let cov = k_coverage(2, &sites, 3).unwrap();
        assert_eq!(cov.coverage_at(1, 2), 1.0);
        assert_eq!(cov.coverage_at(2, 2), 0.0);
        // Duplicates must not inflate ordering size either: both sites have
        // distinct-size 1, so order ties break by index.
        assert_eq!(cov.site_order, vec![0, 1]);
    }

    #[test]
    fn empty_sites_are_skipped() {
        let sites = vec![vec![], vec![e(0)], vec![]];
        let cov = k_coverage(1, &sites, 1).unwrap();
        assert_eq!(cov.n_nonempty_sites, 1);
        assert_eq!(cov.site_order, vec![1]);
    }

    #[test]
    fn uncovered_entities_cap_the_curve() {
        let sites = vec![vec![e(0)]];
        let cov = k_coverage(4, &sites, 1).unwrap();
        assert_eq!(cov.curves[0], vec![0.25]);
    }

    #[test]
    fn coverage_at_interpolates_between_ticks() {
        // 15 sites, each with one new entity → coverage grows linearly.
        let sites: Vec<Vec<EntityId>> = (0..15).map(|i| vec![e(i)]).collect();
        let cov = k_coverage(15, &sites, 1).unwrap();
        // ticks: 1..9, 10, 15.
        assert_eq!(cov.coverage_at(1, 10), 10.0 / 15.0);
        let mid = cov.coverage_at(1, 12);
        assert!((mid - 12.0 / 15.0).abs() < 0.02, "mid {mid}");
        // Beyond the last tick clamps.
        assert_eq!(cov.coverage_at(1, 100), 1.0);
        // t = 0 is 0.
        assert_eq!(cov.coverage_at(1, 0), 0.0);
    }

    #[test]
    fn sites_needed_finds_threshold() {
        let sites: Vec<Vec<EntityId>> = (0..20).map(|i| vec![e(i)]).collect();
        let cov = k_coverage(20, &sites, 1).unwrap();
        assert_eq!(cov.sites_needed(1, 0.5), Some(10));
        assert_eq!(cov.sites_needed(1, 1.0), Some(20));
        assert_eq!(cov.sites_needed(1, 1.01), None);
    }

    #[test]
    fn figure_has_one_series_per_k() {
        let sites = vec![vec![e(0), e(1)], vec![e(0)]];
        let cov = k_coverage(2, &sites, 10).unwrap();
        let fig = cov.to_figure("fig1a", "Restaurants phones");
        assert_eq!(fig.series.len(), 10);
        assert!(fig.log_x);
        assert!(fig.series_named("k=10").is_some());
        // Higher k never exceeds lower k at any tick.
        for i in 0..fig.series[0].points.len() {
            for k in 1..10 {
                assert!(fig.series[k].points[i].1 <= fig.series[k - 1].points[i].1);
            }
        }
    }

    #[test]
    fn error_cases() {
        assert_eq!(k_coverage(0, &[], 1).unwrap_err(), CoverageError::NoEntities);
        assert_eq!(
            k_coverage(3, &[], 0).unwrap_err(),
            CoverageError::ZeroK
        );
        assert_eq!(
            k_coverage(1, &[vec![e(5)]], 1).unwrap_err(),
            CoverageError::EntityOutOfRange {
                entity: 5,
                n_entities: 1
            }
        );
    }

    #[test]
    fn no_sites_yields_empty_curves() {
        let cov = k_coverage(5, &[], 3).unwrap();
        assert!(cov.ticks.is_empty());
        assert!(cov.curves.iter().all(Vec::is_empty));
        assert_eq!(cov.n_nonempty_sites, 0);
    }

    #[test]
    fn ordering_is_by_distinct_size_descending() {
        let sites = vec![vec![e(0)], vec![e(0), e(1), e(2)], vec![e(1), e(2)]];
        let cov = k_coverage(3, &sites, 1).unwrap();
        assert_eq!(cov.site_order, vec![1, 2, 0]);
        // Top-1 already covers everything.
        assert_eq!(cov.coverage_at(1, 1), 1.0);
    }
}
