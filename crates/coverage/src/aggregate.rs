//! Aggregate review coverage — the paper's Figure 4(b).
//!
//! > "A second way to define review coverage is to look at the total number
//! > of all the webpages on the Web that contain a restaurant review. Then,
//! > we can look at the fraction of those webpages covered by the top-n
//! > sites as a function of n."

use webstruct_util::ids::EntityId;
use webstruct_util::report::{Figure, Series};
use webstruct_util::stats::log_ticks;

/// Result of the aggregate (page-mass) coverage sweep.
#[derive(Debug, Clone)]
pub struct AggregateCoverage {
    /// Swept top-n values (log-spaced over sites with >= 1 review page).
    pub ticks: Vec<usize>,
    /// Fraction of all review pages hosted by the top-n sites.
    pub fractions: Vec<f64>,
    /// Total review pages across the web.
    pub total_pages: u64,
    /// Site ordering (indices, by review-page count descending).
    pub site_order: Vec<usize>,
}

impl AggregateCoverage {
    /// Smallest swept n reaching `target` fraction, or `None`.
    #[must_use]
    pub fn sites_needed(&self, target: f64) -> Option<usize> {
        self.fractions
            .iter()
            .position(|&f| f >= target)
            .map(|i| self.ticks[i])
    }

    /// Render as a single-series log-x figure.
    #[must_use]
    pub fn to_figure(&self, id: &str, title: &str) -> Figure {
        let mut fig = Figure::new(id, title)
            .with_axes("top-n sites", "fraction of all review pages")
            .with_log_x();
        let points: Vec<(f64, f64)> = self
            .ticks
            .iter()
            .zip(&self.fractions)
            .map(|(&t, &f)| (t as f64, f))
            .collect();
        fig.push(Series::new("Aggregate Reviews", points));
        fig
    }
}

/// Compute the aggregate review-page coverage curve.
///
/// `review_pages[s]` lists `(entity, page_count)` per site. Returns a
/// degenerate result (`total_pages == 0`, empty curve) when no site hosts
/// reviews.
#[must_use]
pub fn aggregate_coverage(review_pages: &[Vec<(EntityId, u32)>]) -> AggregateCoverage {
    let site_totals: Vec<u64> = review_pages
        .iter()
        .map(|l| l.iter().map(|&(_, c)| u64::from(c)).sum())
        .collect();
    let total_pages: u64 = site_totals.iter().sum();
    let mut site_order: Vec<usize> = (0..review_pages.len())
        .filter(|&s| site_totals[s] > 0)
        .collect();
    site_order.sort_by(|&a, &b| site_totals[b].cmp(&site_totals[a]).then(a.cmp(&b)));
    if total_pages == 0 {
        return AggregateCoverage {
            ticks: vec![],
            fractions: vec![],
            total_pages: 0,
            site_order,
        };
    }
    let ticks = log_ticks(site_order.len());
    let mut fractions = Vec::with_capacity(ticks.len());
    let mut acc = 0u64;
    let mut tick_iter = ticks.iter().copied().peekable();
    for (i, &s) in site_order.iter().enumerate() {
        acc += site_totals[s];
        while tick_iter.peek() == Some(&(i + 1)) {
            tick_iter.next();
            fractions.push(acc as f64 / total_pages as f64);
        }
    }
    AggregateCoverage {
        ticks,
        fractions,
        total_pages,
        site_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    #[test]
    fn head_site_mass_dominates() {
        let pages = vec![
            vec![(e(0), 90u32)],
            vec![(e(1), 9)],
            vec![(e(2), 1)],
        ];
        let agg = aggregate_coverage(&pages);
        assert_eq!(agg.total_pages, 100);
        assert_eq!(agg.site_order, vec![0, 1, 2]);
        assert_eq!(agg.ticks, vec![1, 2, 3]);
        assert_eq!(agg.fractions, vec![0.9, 0.99, 1.0]);
        assert_eq!(agg.sites_needed(0.95), Some(2));
        assert_eq!(agg.sites_needed(1.0), Some(3));
    }

    #[test]
    fn empty_input_degenerates() {
        let agg = aggregate_coverage(&[]);
        assert_eq!(agg.total_pages, 0);
        assert!(agg.ticks.is_empty());
        assert_eq!(agg.sites_needed(0.5), None);
    }

    #[test]
    fn zero_page_sites_are_excluded() {
        let pages = vec![vec![], vec![(e(0), 5)], vec![]];
        let agg = aggregate_coverage(&pages);
        assert_eq!(agg.site_order, vec![1]);
        assert_eq!(agg.fractions, vec![1.0]);
    }

    #[test]
    fn multiple_entities_per_site_sum() {
        let pages = vec![vec![(e(0), 3), (e(1), 7)], vec![(e(2), 10)]];
        let agg = aggregate_coverage(&pages);
        // Tie (10 vs 10) broken by index.
        assert_eq!(agg.site_order, vec![0, 1]);
        assert_eq!(agg.fractions, vec![0.5, 1.0]);
    }

    #[test]
    fn figure_rendering() {
        let pages = vec![vec![(e(0), 1)], vec![(e(1), 1)]];
        let fig = aggregate_coverage(&pages).to_figure("fig4b", "Aggregate Reviews");
        assert_eq!(fig.series.len(), 1);
        assert!(fig.log_x);
        assert_eq!(fig.series[0].points.last().unwrap().1, 1.0);
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let pages: Vec<Vec<(EntityId, u32)>> = (0..50)
            .map(|i| vec![(e(i), (50 - i))])
            .collect();
        let agg = aggregate_coverage(&pages);
        assert!(agg
            .fractions
            .windows(2)
            .all(|w| w[1] >= w[0] - 1e-12));
        assert!((agg.fractions.last().unwrap() - 1.0).abs() < 1e-12);
    }
}
