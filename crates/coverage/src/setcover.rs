//! Greedy set cover — the paper's §3.4.1 "Ordering Sites by Diversity"
//! experiment, which checks whether a *careful* choice of sites covers
//! entities much faster than simply taking the largest sites.
//!
//! Exact maximum-coverage is NP-hard; like the paper we use the greedy
//! (1 − 1/e)-approximation, implemented with lazy evaluation: a site's
//! marginal gain only shrinks as others are picked, so a stale heap entry
//! whose recomputed gain still tops the heap is globally optimal.

use crate::kcov::CoverageError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use webstruct_util::ids::EntityId;
use webstruct_util::report::{Figure, Series};
use webstruct_util::stats::log_ticks;

/// Result of the greedy cover sweep.
#[derive(Debug, Clone)]
pub struct GreedyCover {
    /// Site indices in greedy pick order (sites with zero marginal gain at
    /// pick time are excluded; the sweep stops when coverage is complete).
    pub pick_order: Vec<usize>,
    /// `coverage[i]` = fraction of entities covered by the first `i + 1`
    /// picks.
    pub coverage: Vec<f64>,
}

impl GreedyCover {
    /// Number of picks needed to reach `target` coverage, or `None`.
    #[must_use]
    pub fn picks_needed(&self, target: f64) -> Option<usize> {
        self.coverage.iter().position(|&c| c >= target).map(|i| i + 1)
    }

    /// Downsample the pick curve to log-spaced points for plotting.
    #[must_use]
    pub fn log_sampled(&self) -> Vec<(f64, f64)> {
        if self.coverage.is_empty() {
            return Vec::new();
        }
        log_ticks(self.coverage.len())
            .into_iter()
            .map(|t| (t as f64, self.coverage[t - 1]))
            .collect()
    }
}

/// Run lazy-greedy set cover over the occurrence lists.
///
/// # Errors
/// See [`CoverageError`].
pub fn greedy_cover(
    n_entities: usize,
    site_entities: &[Vec<EntityId>],
) -> Result<GreedyCover, CoverageError> {
    if n_entities == 0 {
        return Err(CoverageError::NoEntities);
    }
    for list in site_entities {
        for e in list {
            if e.index() >= n_entities {
                return Err(CoverageError::EntityOutOfRange {
                    entity: e.raw(),
                    n_entities,
                });
            }
        }
    }
    // Deduplicated copies: duplicate entries would corrupt gain accounting.
    let dedup: Vec<Vec<EntityId>> = site_entities
        .iter()
        .map(|list| {
            let mut v = list.clone();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();

    let mut covered = vec![false; n_entities];
    let mut n_covered = 0usize;
    // Max-heap of (gain_upper_bound, Reverse(site)) — Reverse(site) makes
    // ties deterministic (smallest index wins).
    let mut heap: BinaryHeap<(usize, Reverse<usize>)> = dedup
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.is_empty())
        .map(|(s, l)| (l.len(), Reverse(s)))
        .collect();
    let mut stale_gain: Vec<usize> = dedup.iter().map(Vec::len).collect();

    let mut pick_order = Vec::new();
    let mut coverage = Vec::new();
    while let Some((claimed, Reverse(s))) = heap.pop() {
        // Recompute the true marginal gain.
        let true_gain = dedup[s].iter().filter(|e| !covered[e.index()]).count();
        if true_gain == 0 {
            continue;
        }
        if true_gain < claimed {
            // Lazy evaluation: push back with the tightened bound unless it
            // still dominates the heap top.
            if let Some(&(top, _)) = heap.peek() {
                if true_gain < top {
                    stale_gain[s] = true_gain;
                    heap.push((true_gain, Reverse(s)));
                    continue;
                }
            }
        }
        for e in &dedup[s] {
            if !covered[e.index()] {
                covered[e.index()] = true;
                n_covered += 1;
            }
        }
        pick_order.push(s);
        coverage.push(n_covered as f64 / n_entities as f64);
        if n_covered == n_entities {
            break;
        }
    }
    let _ = stale_gain; // retained only for clarity of the algorithm
    Ok(GreedyCover {
        pick_order,
        coverage,
    })
}

/// Build the paper's Figure 5: greedy cover vs. order-by-size 1-coverage.
///
/// `by_size` must be the k=1 curve of a [`crate::kcov::KCoverage`] on the
/// same data (points `(t, coverage)`).
#[must_use]
pub fn comparison_figure(
    id: &str,
    title: &str,
    by_size: &Series,
    greedy: &GreedyCover,
) -> Figure {
    let mut fig = Figure::new(id, title)
        .with_axes("top-t sites", "1-coverage")
        .with_log_x();
    fig.push(Series::new("Order by Size", by_size.points.clone()));
    fig.push(Series::new("Greedy Set Cover", greedy.log_sampled()));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    #[test]
    fn greedy_prefers_complementary_sites() {
        // Site 0 is biggest but sites 1+2 together cover everything.
        let sites = vec![
            vec![e(0), e(1), e(2)],
            vec![e(0), e(1), e(3)],
            vec![e(2), e(4), e(5)],
        ];
        let g = greedy_cover(6, &sites).unwrap();
        assert_eq!(g.pick_order[0], 0); // ties: 3-gain sites, smallest index
        // Next pick must be site 2 (gain 2) over site 1 (gain 1).
        assert_eq!(g.pick_order[1], 2);
        assert_eq!(g.pick_order[2], 1);
        assert_eq!(g.coverage, vec![0.5, 5.0 / 6.0, 1.0]);
    }

    #[test]
    fn stops_when_nothing_new_remains() {
        let sites = vec![vec![e(0), e(1)], vec![e(0)], vec![e(1)]];
        let g = greedy_cover(2, &sites).unwrap();
        assert_eq!(g.pick_order, vec![0]);
        assert_eq!(g.coverage, vec![1.0]);
    }

    #[test]
    fn handles_uncoverable_entities() {
        let sites = vec![vec![e(0)]];
        let g = greedy_cover(3, &sites).unwrap();
        assert_eq!(g.coverage, vec![1.0 / 3.0]);
        assert_eq!(g.picks_needed(0.3), Some(1));
        assert_eq!(g.picks_needed(0.9), None);
    }

    #[test]
    fn greedy_never_trails_by_size_at_any_prefix() {
        // Pseudo-random instance; greedy must weakly dominate the
        // order-by-size curve at every prefix length.
        let mut rng = webstruct_util::Xoshiro256::from_seed(webstruct_util::Seed(9));
        let n = 200usize;
        let sites: Vec<Vec<EntityId>> = (0..60)
            .map(|_| {
                let size = 1 + rng.usize_below(40);
                (0..size).map(|_| e(rng.u64_below(n as u64) as u32)).collect()
            })
            .collect();
        let g = greedy_cover(n, &sites).unwrap();
        let cov = crate::kcov::k_coverage(n, &sites, 1).unwrap();
        for (i, &t) in cov.ticks.iter().enumerate() {
            if t <= g.coverage.len() {
                let by_size = cov.curves[0][i];
                let greedy = g.coverage[t - 1];
                assert!(
                    greedy + 1e-9 >= by_size,
                    "at t={t}: greedy {greedy} < by-size {by_size}"
                );
            }
        }
    }

    #[test]
    fn duplicate_entries_do_not_inflate_gains() {
        let sites = vec![vec![e(0), e(0), e(0), e(1)], vec![e(2), e(3)]];
        let g = greedy_cover(4, &sites).unwrap();
        // Site 1 has the larger distinct gain? No: site 0 has {0,1} = 2 and
        // site 1 has {2,3} = 2; tie broken by index.
        assert_eq!(g.pick_order, vec![0, 1]);
        assert_eq!(g.coverage, vec![0.5, 1.0]);
    }

    #[test]
    fn log_sampled_endpoints() {
        let sites: Vec<Vec<EntityId>> = (0..25).map(|i| vec![e(i)]).collect();
        let g = greedy_cover(25, &sites).unwrap();
        let pts = g.log_sampled();
        assert_eq!(pts.first().unwrap().0, 1.0);
        assert_eq!(pts.last().unwrap().0, 25.0);
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_figure_has_two_series() {
        let sites = vec![vec![e(0), e(1)], vec![e(1)]];
        let g = greedy_cover(2, &sites).unwrap();
        let cov = crate::kcov::k_coverage(2, &sites, 1).unwrap();
        let fig = comparison_figure(
            "fig5",
            "Greedy Covering For Restaurant Homepages",
            &cov.to_figure("x", "y").series[0],
            &g,
        );
        assert_eq!(fig.series.len(), 2);
        assert!(fig.series_named("Greedy Set Cover").is_some());
    }

    #[test]
    fn error_propagation() {
        assert_eq!(greedy_cover(0, &[]).unwrap_err(), CoverageError::NoEntities);
        assert!(matches!(
            greedy_cover(1, &[vec![e(9)]]).unwrap_err(),
            CoverageError::EntityOutOfRange { entity: 9, .. }
        ));
    }
}
