//! # webstruct-coverage
//!
//! The spread-of-data analyses of §3 of *An Analysis of Structured Data on
//! the Web*:
//!
//! * [`kcov`] — k-coverage of the top-t sites (Figures 1–4(a));
//! * [`setcover`] — lazy-greedy set cover vs. order-by-size (Figure 5);
//! * [`aggregate`] — aggregate review-page coverage (Figure 4(b));
//! * [`streaming`] — the online accumulator used when sites arrive from a
//!   crawler rather than a sorted sweep.
//!
//! Inputs are plain per-site entity lists, so the same functions run on
//! ground-truth (oracle) relations from `webstruct-corpus` and on extracted
//! relations from `webstruct-extract`.

//!
//! ## Example
//!
//! ```
//! use webstruct_coverage::k_coverage;
//! use webstruct_util::EntityId;
//!
//! let sites = vec![
//!     vec![EntityId::new(0), EntityId::new(1)],
//!     vec![EntityId::new(1)],
//! ];
//! let cov = k_coverage(2, &sites, 2).unwrap();
//! assert_eq!(cov.coverage_at(1, 1), 1.0);  // the big site covers all
//! assert_eq!(cov.coverage_at(2, 2), 0.5);  // only entity 1 is corroborated
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod kcov;
pub mod setcover;
pub mod streaming;

pub use aggregate::{aggregate_coverage, AggregateCoverage};
pub use kcov::{k_coverage, CoverageError, KCoverage};
pub use streaming::StreamingCoverage;
pub use setcover::{comparison_figure, greedy_cover, GreedyCover};
