//! # webstruct-graph
//!
//! The connectivity analyses of §5 of *An Analysis of Structured Data on
//! the Web*:
//!
//! * [`bipartite`] — the entity–site graph in CSR form;
//! * [`components`] — union–find connected components (Table 2 columns);
//! * [`diameter`] — exact diameters via iFUB + double-sweep bounds
//!   (Table 2's diameter column and the d/2 crawler-iteration bound);
//! * [`robustness`] — largest-component survival after removing the top-k
//!   sites (Figure 9);
//! * [`metrics`] — degree distributions and sampled average distances.

//!
//! ## Example
//!
//! ```
//! use webstruct_graph::{component_stats, ifub_diameter, BipartiteGraph};
//! use webstruct_util::EntityId;
//!
//! let sites = vec![vec![EntityId::new(0), EntityId::new(1)], vec![EntityId::new(1)]];
//! let graph = BipartiteGraph::from_occurrences(2, &sites).unwrap();
//! assert_eq!(component_stats(&graph, &[]).n_components, 1);
//! assert!(ifub_diameter(&graph, 1000).exact);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod accumulate;
pub mod bipartite;
pub mod components;
pub mod diameter;
pub mod metrics;
pub mod robustness;

pub use accumulate::GraphAccumulator;
pub use bipartite::{BipartiteGraph, GraphError};
pub use components::{component_stats, ComponentStats, UnionFind};
pub use diameter::{double_sweep, eccentricity, ifub_diameter, Diameter};
pub use metrics::{entity_degrees, sampled_avg_entity_distance, site_degrees, DegreeStats};
pub use robustness::{random_removal_sweep, robustness_series, robustness_sweep, RobustnessPoint};
