//! Additional structural metrics of the entity–site graph: degree
//! distributions and sampled average path length. Complements the Table 2
//! metrics with the diagnostics used to validate the generative model.

use crate::bipartite::BipartiteGraph;
use std::collections::VecDeque;
use webstruct_util::ids::EntityId;
use webstruct_util::powerlaw::{hill_estimator, LogHistogram};
use webstruct_util::rng::{Seed, Xoshiro256};

/// Degree statistics for one side of the bipartite graph.
#[derive(Debug, Clone)]
pub struct DegreeStats {
    /// Number of nodes with degree >= 1.
    pub nonzero: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree over nonzero nodes.
    pub mean: f64,
    /// Log₂ histogram of nonzero degrees.
    pub histogram: LogHistogram,
    /// Hill estimate of the degree tail exponent, when estimable.
    pub tail_exponent: Option<f64>,
}

fn degree_stats(degrees: impl Iterator<Item = usize>) -> DegreeStats {
    let nonzero: Vec<f64> = degrees.filter(|&d| d > 0).map(|d| d as f64).collect();
    let k = if nonzero.len() < 3 {
        0
    } else {
        (nonzero.len() / 10).clamp(1, nonzero.len() - 1)
    };
    DegreeStats {
        nonzero: nonzero.len(),
        max: nonzero.iter().copied().fold(0.0, f64::max) as usize,
        mean: if nonzero.is_empty() {
            0.0
        } else {
            nonzero.iter().sum::<f64>() / nonzero.len() as f64
        },
        histogram: LogHistogram::build(&nonzero),
        tail_exponent: if k == 0 {
            None
        } else {
            hill_estimator(&nonzero, k)
        },
    }
}

/// Degree statistics of the entity side (sites per entity).
#[must_use]
pub fn entity_degrees(graph: &BipartiteGraph) -> DegreeStats {
    degree_stats((0..graph.n_entities()).map(|e| graph.sites_of(EntityId::new(e as u32)).len()))
}

/// Degree statistics of the site side (entities per site).
#[must_use]
pub fn site_degrees(graph: &BipartiteGraph) -> DegreeStats {
    degree_stats(
        (0..graph.n_sites())
            .map(|s| graph.entities_of(webstruct_util::ids::SiteId::new(s as u32)).len()),
    )
}

/// Estimate the average shortest-path length between *entities* by
/// sampling `samples` BFS sources; unreachable pairs are skipped.
///
/// Returns `None` when the graph has no edges.
#[must_use]
pub fn sampled_avg_entity_distance(
    graph: &BipartiteGraph,
    samples: usize,
    seed: Seed,
) -> Option<f64> {
    if graph.n_edges() == 0 || samples == 0 {
        return None;
    }
    let mut rng = Xoshiro256::from_seed(seed.derive("avg-dist"));
    let mut total = 0u64;
    let mut pairs = 0u64;
    let mut dist = vec![u32::MAX; graph.n_nodes()];
    for _ in 0..samples {
        // Sample a present entity as source.
        let source = loop {
            let e = rng.u64_below(graph.n_entities() as u64) as u32;
            if !graph.sites_of(EntityId::new(e)).is_empty() {
                break e;
            }
        };
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[source as usize] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for v in graph.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        for (node, &d) in dist.iter().enumerate().take(graph.n_entities()) {
            if d != u32::MAX && node as u32 != source {
                total += u64::from(d);
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total as f64 / pairs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    fn star(n: u32) -> BipartiteGraph {
        BipartiteGraph::from_occurrences(n as usize, &[(0..n).map(e).collect()]).unwrap()
    }

    #[test]
    fn degree_stats_of_a_star() {
        let g = star(10);
        let ent = entity_degrees(&g);
        assert_eq!(ent.nonzero, 10);
        assert_eq!(ent.max, 1);
        assert!((ent.mean - 1.0).abs() < 1e-12);
        let site = site_degrees(&g);
        assert_eq!(site.nonzero, 1);
        assert_eq!(site.max, 10);
        assert_eq!(site.histogram.total(), 1);
    }

    #[test]
    fn avg_distance_on_star_is_two() {
        let g = star(20);
        let d = sampled_avg_entity_distance(&g, 5, Seed(1)).unwrap();
        // Every entity pair is at distance exactly 2 (via the hub).
        assert!((d - 2.0).abs() < 1e-12, "avg {d}");
    }

    #[test]
    fn avg_distance_on_path_graph() {
        // e0-s0-e1-s1-e2: distances from each entity: e0: {2,4}, e1: {2,2},
        // e2: {4,2} → mean over sampled sources converges to 8/3 when all
        // three get sampled.
        let g = BipartiteGraph::from_occurrences(
            3,
            &[vec![e(0), e(1)], vec![e(1), e(2)]],
        )
        .unwrap();
        let d = sampled_avg_entity_distance(&g, 50, Seed(2)).unwrap();
        assert!((2.0..=4.0).contains(&d), "avg {d}");
    }

    #[test]
    fn empty_graph_has_no_distance() {
        let g = BipartiteGraph::from_occurrences(3, &[]).unwrap();
        assert_eq!(sampled_avg_entity_distance(&g, 5, Seed(3)), None);
        assert_eq!(entity_degrees(&g).nonzero, 0);
        assert_eq!(entity_degrees(&g).mean, 0.0);
    }

    #[test]
    fn zero_samples_yield_none() {
        let g = star(5);
        assert_eq!(sampled_avg_entity_distance(&g, 0, Seed(4)), None);
    }
}
