//! Connected components of the entity–site graph (§5.3), via a union–find
//! with union by size and path halving.

use crate::bipartite::BipartiteGraph;
use webstruct_util::ids::SiteId;

/// Disjoint-set forest over dense u32 node ids.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns true when they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        true
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// Component statistics for an entity–site graph, mirroring Table 2 and
/// Figure 9: components and sizes are counted over *entities* (sites are
/// connectors but the paper reports "% entities in largest comp").
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentStats {
    /// Number of connected components (among nodes with >= 1 edge).
    pub n_components: usize,
    /// Number of entities in the largest component (largest by entity
    /// count).
    pub largest_entities: usize,
    /// Total entities present in the graph.
    pub entities_present: usize,
}

impl ComponentStats {
    /// Fraction of present entities inside the largest component.
    #[must_use]
    pub fn largest_fraction(&self) -> f64 {
        if self.entities_present == 0 {
            return 0.0;
        }
        self.largest_entities as f64 / self.entities_present as f64
    }
}

/// Compute component statistics, optionally pretending the sites in
/// `removed_sites` (graph site indices) do not exist — used by the Figure 9
/// robustness sweep.
#[must_use]
pub fn component_stats(graph: &BipartiteGraph, removed_sites: &[usize]) -> ComponentStats {
    let n_entities = graph.n_entities();
    let mut removed = vec![false; graph.n_sites()];
    for &s in removed_sites {
        removed[s] = true;
    }
    let mut uf = UnionFind::new(graph.n_nodes());
    let mut entity_touched = vec![false; n_entities];
    for (s, &is_removed) in removed.iter().enumerate() {
        if is_removed {
            continue;
        }
        let site_node = (n_entities + s) as u32;
        for &e in graph.entities_of(SiteId::new(s as u32)) {
            uf.union(site_node, e);
            entity_touched[e as usize] = true;
        }
    }
    // Count components by entity membership and find the entity-largest.
    let mut counts: webstruct_util::FxHashMap<u32, usize> = webstruct_util::FxHashMap::default();
    for (e, &touched) in entity_touched.iter().enumerate() {
        if touched {
            *counts.entry(uf.find(e as u32)).or_insert(0) += 1;
        }
    }
    let entities_present = entity_touched.iter().filter(|&&t| t).count();
    let largest_entities = counts.values().copied().max().unwrap_or(0);
    ComponentStats {
        n_components: counts.len(),
        largest_entities,
        entities_present,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_util::ids::EntityId;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_ne!(uf.find(0), uf.find(1));
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.find(0), uf.find(1));
        assert_eq!(uf.set_size(0), 2);
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.set_size(2), 4);
        assert_eq!(uf.set_size(4), 1);
    }

    #[test]
    fn two_islands() {
        // Component A: e0,e1 via s0; component B: e2 via s1.
        let g = BipartiteGraph::from_occurrences(3, &[vec![e(0), e(1)], vec![e(2)]]).expect("fixture ids lie inside the declared entity universe");
        let stats = component_stats(&g, &[]);
        assert_eq!(stats.n_components, 2);
        assert_eq!(stats.largest_entities, 2);
        assert_eq!(stats.entities_present, 3);
        assert!((stats.largest_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shared_entity_bridges_sites() {
        let g = BipartiteGraph::from_occurrences(
            3,
            &[vec![e(0), e(1)], vec![e(1), e(2)]],
        )
        .expect("fixture ids lie inside the declared entity universe");
        let stats = component_stats(&g, &[]);
        assert_eq!(stats.n_components, 1);
        assert_eq!(stats.largest_entities, 3);
    }

    #[test]
    fn removal_splits_components() {
        // s0 is the hub; s1 and s2 are local.
        let g = BipartiteGraph::from_occurrences(
            4,
            &[
                vec![e(0), e(1), e(2), e(3)],
                vec![e(0), e(1)],
                vec![e(2)],
            ],
        )
        .expect("fixture ids lie inside the declared entity universe");
        let full = component_stats(&g, &[]);
        assert_eq!(full.n_components, 1);
        let removed = component_stats(&g, &[0]);
        // Without the hub: {e0,e1} via s1, {e2} via s2; e3 disappears.
        assert_eq!(removed.n_components, 2);
        assert_eq!(removed.largest_entities, 2);
        assert_eq!(removed.entities_present, 3);
    }

    #[test]
    fn empty_graph_stats() {
        let g = BipartiteGraph::from_occurrences(2, &[]).expect("fixture ids lie inside the declared entity universe");
        let stats = component_stats(&g, &[]);
        assert_eq!(stats.n_components, 0);
        assert_eq!(stats.largest_fraction(), 0.0);
    }

    #[test]
    fn removing_everything() {
        let g = BipartiteGraph::from_occurrences(2, &[vec![e(0), e(1)]]).expect("fixture ids lie inside the declared entity universe");
        let stats = component_stats(&g, &[0]);
        assert_eq!(stats.n_components, 0);
        assert_eq!(stats.entities_present, 0);
    }
}
