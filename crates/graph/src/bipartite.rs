//! The entity–site bipartite graph of §5.1.
//!
//! > "We consider a bipartite graph between the set of entities in a given
//! > domain and the set of websites, where there is an edge between an
//! > entity e and a website h if there is a webpage in h that contains e."
//!
//! Stored as forward + reverse CSR over dense u32 ids; node `i` for
//! `i < n_entities` is an entity, and node `n_entities + s` is site `s`.

use webstruct_util::ids::{EntityId, SiteId};

/// Errors constructing a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An occurrence list referenced an entity outside the universe.
    EntityOutOfRange {
        /// Offending id.
        entity: u32,
        /// Universe size.
        n_entities: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::EntityOutOfRange { entity, n_entities } => {
                write!(f, "entity id {entity} out of range (n = {n_entities})")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable entity–site bipartite graph in CSR form.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    n_entities: usize,
    n_sites: usize,
    /// CSR: sites adjacent to each entity.
    entity_offsets: Vec<u32>,
    entity_adj: Vec<u32>,
    /// CSR: entities adjacent to each site.
    site_offsets: Vec<u32>,
    site_adj: Vec<u32>,
}

impl BipartiteGraph {
    /// Build from per-site entity lists (duplicates are collapsed).
    ///
    /// # Errors
    /// See [`GraphError`].
    pub fn from_occurrences(
        n_entities: usize,
        site_entities: &[Vec<EntityId>],
    ) -> Result<Self, GraphError> {
        let n_sites = site_entities.len();
        // First pass: validate + count entity degrees (after per-site dedup).
        let mut dedup: Vec<Vec<u32>> = Vec::with_capacity(n_sites);
        let mut entity_degree = vec![0u32; n_entities];
        for list in site_entities {
            let mut v: Vec<u32> = Vec::with_capacity(list.len());
            for e in list {
                if e.index() >= n_entities {
                    return Err(GraphError::EntityOutOfRange {
                        entity: e.raw(),
                        n_entities,
                    });
                }
                v.push(e.raw());
            }
            v.sort_unstable();
            v.dedup();
            for &e in &v {
                entity_degree[e as usize] += 1;
            }
            dedup.push(v);
        }
        // Site CSR is direct.
        let mut site_offsets = Vec::with_capacity(n_sites + 1);
        site_offsets.push(0u32);
        let total_edges: usize = dedup.iter().map(Vec::len).sum();
        let mut site_adj = Vec::with_capacity(total_edges);
        for v in &dedup {
            site_adj.extend_from_slice(v);
            site_offsets.push(site_adj.len() as u32);
        }
        // Entity CSR by counting sort.
        let mut entity_offsets = vec![0u32; n_entities + 1];
        for e in 0..n_entities {
            entity_offsets[e + 1] = entity_offsets[e] + entity_degree[e];
        }
        let mut cursor = entity_offsets[..n_entities].to_vec();
        let mut entity_adj = vec![0u32; total_edges];
        for (s, v) in dedup.iter().enumerate() {
            for &e in v {
                entity_adj[cursor[e as usize] as usize] = s as u32;
                cursor[e as usize] += 1;
            }
        }
        Ok(BipartiteGraph {
            n_entities,
            n_sites,
            entity_offsets,
            entity_adj,
            site_offsets,
            site_adj,
        })
    }

    /// Number of entities in the universe (including unmentioned ones).
    #[must_use]
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Number of sites (including empty ones).
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Total node count (`n_entities + n_sites`).
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.n_entities + self.n_sites
    }

    /// Number of edges (distinct (site, entity) pairs).
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.site_adj.len()
    }

    /// Sites mentioning an entity.
    #[must_use]
    pub fn sites_of(&self, e: EntityId) -> &[u32] {
        let i = e.index();
        &self.entity_adj[self.entity_offsets[i] as usize..self.entity_offsets[i + 1] as usize]
    }

    /// Entities mentioned by a site.
    #[must_use]
    pub fn entities_of(&self, s: SiteId) -> &[u32] {
        let i = s.index();
        &self.site_adj[self.site_offsets[i] as usize..self.site_offsets[i + 1] as usize]
    }

    /// Degree of a node in the unified node space.
    #[must_use]
    pub fn degree(&self, node: u32) -> usize {
        let n = node as usize;
        if n < self.n_entities {
            (self.entity_offsets[n + 1] - self.entity_offsets[n]) as usize
        } else {
            let s = n - self.n_entities;
            (self.site_offsets[s + 1] - self.site_offsets[s]) as usize
        }
    }

    /// Neighbours of a node in the unified node space.
    ///
    /// Entity neighbours are returned as site node ids (offset by
    /// `n_entities`) and vice versa; use with the BFS/components code.
    pub fn neighbors(&self, node: u32) -> impl Iterator<Item = u32> + '_ {
        let n = node as usize;
        let offset = self.n_entities as u32;
        let (slice, add): (&[u32], bool) = if n < self.n_entities {
            (self.sites_of(EntityId::new(node)), true)
        } else {
            (
                self.entities_of(SiteId::new((n - self.n_entities) as u32)),
                false,
            )
        };
        slice
            .iter()
            .map(move |&x| if add { x + offset } else { x })
    }

    /// Number of entities with at least one mention.
    #[must_use]
    pub fn entities_present(&self) -> usize {
        (0..self.n_entities)
            .filter(|&e| self.entity_offsets[e + 1] > self.entity_offsets[e])
            .count()
    }

    /// Average number of sites per *present* entity (Table 2 column).
    #[must_use]
    pub fn avg_sites_per_entity(&self) -> f64 {
        let present = self.entities_present();
        if present == 0 {
            return 0.0;
        }
        self.n_edges() as f64 / present as f64
    }

    /// Site indices ordered by entity count descending (ties by index) —
    /// "the k largest web sites (sorted by the number of entity mentions)".
    #[must_use]
    pub fn sites_by_size(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n_sites)
            .filter(|&s| self.site_offsets[s + 1] > self.site_offsets[s])
            .collect();
        order.sort_by(|&a, &b| {
            let da = self.site_offsets[a + 1] - self.site_offsets[a];
            let db = self.site_offsets[b + 1] - self.site_offsets[b];
            db.cmp(&da).then(a.cmp(&b))
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    fn toy() -> BipartiteGraph {
        // 4 entities, 3 sites: s0={0,1,2}, s1={1,2}, s2={} ; entity 3 unmentioned
        BipartiteGraph::from_occurrences(
            4,
            &[vec![e(0), e(1), e(2)], vec![e(1), e(2)], vec![]],
        )
        .unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = toy();
        assert_eq!(g.n_entities(), 4);
        assert_eq!(g.n_sites(), 3);
        assert_eq!(g.n_nodes(), 7);
        assert_eq!(g.n_edges(), 5);
        assert_eq!(g.entities_present(), 3);
        assert!((g.avg_sites_per_entity() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.degree(0), 1); // entity 0: only s0
        assert_eq!(g.degree(1), 2); // entity 1: s0, s1
        assert_eq!(g.degree(3), 0); // unmentioned entity
        assert_eq!(g.degree(4), 3); // site 0 node
        assert_eq!(g.degree(6), 0); // empty site
    }

    #[test]
    fn adjacency_is_consistent_both_ways() {
        let g = toy();
        assert_eq!(g.sites_of(e(1)), &[0, 1]);
        assert_eq!(g.entities_of(SiteId::new(0)), &[0, 1, 2]);
        // Unified-space neighbours.
        let n0: Vec<u32> = g.neighbors(0).collect();
        assert_eq!(n0, vec![4]); // entity 0 -> site node 4
        let n4: Vec<u32> = g.neighbors(4).collect();
        assert_eq!(n4, vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_collapse_to_one_edge() {
        let g = BipartiteGraph::from_occurrences(2, &[vec![e(0), e(0), e(1)]]).unwrap();
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.sites_of(e(0)), &[0]);
    }

    #[test]
    fn out_of_range_rejected() {
        let err = BipartiteGraph::from_occurrences(2, &[vec![e(5)]]).unwrap_err();
        assert_eq!(
            err,
            GraphError::EntityOutOfRange {
                entity: 5,
                n_entities: 2
            }
        );
    }

    #[test]
    fn sites_by_size_excludes_empty_and_orders() {
        let g = toy();
        assert_eq!(g.sites_by_size(), vec![0, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_occurrences(3, &[]).unwrap();
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.entities_present(), 0);
        assert_eq!(g.avg_sites_per_entity(), 0.0);
        assert!(g.sites_by_size().is_empty());
    }
}
