//! Connectivity robustness (§5.3, Figure 9): is the graph held together by
//! a few top sites?
//!
//! > "We re-examine the connectivity of these graphs after removing from
//! > them the k largest web sites (sorted by the number of entity
//! > mentions). ... Figure 9 plots the fraction of structured entities in
//! > the largest component after removing the top k sites."

use crate::bipartite::BipartiteGraph;
use crate::components::{component_stats, ComponentStats};
use webstruct_util::report::Series;

/// One sweep point of the robustness experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessPoint {
    /// Number of top sites removed.
    pub removed: usize,
    /// Component statistics after removal.
    pub stats: ComponentStats,
    /// Fraction of the *original* present entities still in the largest
    /// component (this is the Figure 9 y-axis: entities that lose every
    /// site count against the fraction).
    pub fraction_of_original: f64,
}

/// Sweep `k = 0..=max_k` removals of the largest sites.
#[must_use]
pub fn robustness_sweep(graph: &BipartiteGraph, max_k: usize) -> Vec<RobustnessPoint> {
    let order = graph.sites_by_size();
    let baseline_present = component_stats(graph, &[]).entities_present;
    (0..=max_k.min(order.len()))
        .map(|k| {
            let stats = component_stats(graph, &order[..k]);
            let fraction_of_original = if baseline_present == 0 {
                0.0
            } else {
                stats.largest_entities as f64 / baseline_present as f64
            };
            RobustnessPoint {
                removed: k,
                stats,
                fraction_of_original,
            }
        })
        .collect()
}

/// Sweep `k = 0..=max_k` removals of *random* sites — the baseline that
/// shows top-k removal is the adversarial case: random removals barely
/// dent the giant component because most sites are tail sites.
#[must_use]
pub fn random_removal_sweep(
    graph: &BipartiteGraph,
    max_k: usize,
    seed: webstruct_util::Seed,
) -> Vec<RobustnessPoint> {
    let mut rng = webstruct_util::Xoshiro256::from_seed(seed.derive("rand-removal"));
    let mut order: Vec<usize> = graph.sites_by_size();
    rng.shuffle(&mut order);
    let baseline_present = component_stats(graph, &[]).entities_present;
    (0..=max_k.min(order.len()))
        .map(|k| {
            let stats = component_stats(graph, &order[..k]);
            let fraction_of_original = if baseline_present == 0 {
                0.0
            } else {
                stats.largest_entities as f64 / baseline_present as f64
            };
            RobustnessPoint {
                removed: k,
                stats,
                fraction_of_original,
            }
        })
        .collect()
}

/// Convert a sweep into a plot series (`x` = k, `y` = fraction).
#[must_use]
pub fn robustness_series(name: &str, sweep: &[RobustnessPoint]) -> Series {
    Series::new(
        name,
        sweep
            .iter()
            .map(|p| (p.removed as f64, p.fraction_of_original))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_util::ids::EntityId;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    #[test]
    fn hub_removal_fragments_a_star() {
        // Hub with 4 entities; one small site with 2 of them.
        let g = BipartiteGraph::from_occurrences(
            4,
            &[vec![e(0), e(1), e(2), e(3)], vec![e(0), e(1)]],
        )
        .expect("fixture ids lie inside the declared entity universe");
        let sweep = robustness_sweep(&g, 2);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].fraction_of_original, 1.0);
        // Remove the hub: only {e0, e1} survive via the small site.
        assert_eq!(sweep[1].stats.largest_entities, 2);
        assert!((sweep[1].fraction_of_original - 0.5).abs() < 1e-12);
        // Remove both: nothing left.
        assert_eq!(sweep[2].stats.entities_present, 0);
        assert_eq!(sweep[2].fraction_of_original, 0.0);
    }

    #[test]
    fn redundant_graph_is_robust() {
        // Every entity on 3 overlapping sites: removing one changes nothing.
        let all: Vec<EntityId> = (0..10).map(e).collect();
        let g = BipartiteGraph::from_occurrences(
            10,
            &[all.clone(), all.clone(), all],
        )
        .expect("fixture ids lie inside the declared entity universe");
        let sweep = robustness_sweep(&g, 2);
        assert_eq!(sweep[0].fraction_of_original, 1.0);
        assert_eq!(sweep[1].fraction_of_original, 1.0);
        assert_eq!(sweep[2].fraction_of_original, 1.0);
    }

    #[test]
    fn max_k_clamped_to_site_count() {
        let g = BipartiteGraph::from_occurrences(2, &[vec![e(0), e(1)]]).expect("fixture ids lie inside the declared entity universe");
        let sweep = robustness_sweep(&g, 10);
        assert_eq!(sweep.len(), 2); // k = 0, 1
    }

    #[test]
    fn series_conversion() {
        let g = BipartiteGraph::from_occurrences(2, &[vec![e(0), e(1)]]).expect("fixture ids lie inside the declared entity universe");
        let sweep = robustness_sweep(&g, 1);
        let s = robustness_series("Banks", &sweep);
        assert_eq!(s.name, "Banks");
        assert_eq!(s.points, vec![(0.0, 1.0), (1.0, 0.0)]);
    }

    #[test]
    fn random_removal_is_gentler_than_top_k() {
        // Hub + tail world: removing the top site is catastrophic;
        // removing random sites (overwhelmingly tail) is not.
        let mut sites = vec![(0..40).map(e).collect::<Vec<_>>()];
        for i in 0..40u32 {
            sites.push(vec![e(i), e((i + 1) % 40)]);
        }
        let g = BipartiteGraph::from_occurrences(40, &sites).expect("fixture ids lie inside the declared entity universe");
        let top = robustness_sweep(&g, 5);
        let random = random_removal_sweep(&g, 5, webstruct_util::Seed(3));
        assert_eq!(random.len(), 6);
        assert!((random[0].fraction_of_original - 1.0).abs() < 1e-12);
        // On average across the sweep, random removal keeps at least as
        // much of the graph as adversarial top-k removal.
        let avg = |pts: &[super::RobustnessPoint]| {
            pts.iter().map(|p| p.fraction_of_original).sum::<f64>() / pts.len() as f64
        };
        assert!(avg(&random) >= avg(&top) - 1e-9);
    }

    #[test]
    fn empty_graph_sweep() {
        let g = BipartiteGraph::from_occurrences(2, &[]).expect("fixture ids lie inside the declared entity universe");
        let sweep = robustness_sweep(&g, 3);
        assert_eq!(sweep.len(), 1);
        assert_eq!(sweep[0].fraction_of_original, 0.0);
    }
}
