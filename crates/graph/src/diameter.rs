//! Graph diameter (§5.2).
//!
//! The paper runs BFS from every node on a cluster; we instead implement
//! the iFUB algorithm (Crescenzi et al.), which computes the *exact*
//! diameter of the largest component with a handful of BFS traversals on
//! hub-dominated graphs like these — plus a double-sweep lower bound and a
//! BFS-budgeted fallback for pathological inputs.
//!
//! From an extraction perspective the quantity that matters is `d/2`: the
//! iteration bound for a perfect set-expansion crawler (§5.2).

use crate::bipartite::BipartiteGraph;
use std::collections::VecDeque;

/// Result of a diameter computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Diameter {
    /// The diameter of the component containing the start node (exact when
    /// `exact` is true, otherwise a lower bound).
    pub value: u32,
    /// Whether the value is exact.
    pub exact: bool,
    /// Number of BFS traversals spent.
    pub bfs_runs: u32,
}

const UNVISITED: u32 = u32::MAX;

/// Single-source BFS over the unified node space. Returns the distance
/// array and the farthest node (ties: smallest id).
fn bfs(graph: &BipartiteGraph, start: u32, dist: &mut Vec<u32>) -> (u32, u32) {
    dist.clear();
    dist.resize(graph.n_nodes(), UNVISITED);
    let mut queue = VecDeque::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    let mut far_node = start;
    let mut far_dist = 0;
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for v in graph.neighbors(u) {
            if dist[v as usize] == UNVISITED {
                dist[v as usize] = du + 1;
                if du + 1 > far_dist {
                    far_dist = du + 1;
                    far_node = v;
                }
                queue.push_back(v);
            }
        }
    }
    (far_node, far_dist)
}

/// Eccentricity of `start` within its component.
#[must_use]
pub fn eccentricity(graph: &BipartiteGraph, start: u32) -> u32 {
    let mut dist = Vec::new();
    bfs(graph, start, &mut dist).1
}

/// Double-sweep lower bound: BFS from `start`, then BFS from the farthest
/// node found; the second eccentricity lower-bounds the diameter (and on
/// many real graphs equals it).
#[must_use]
pub fn double_sweep(graph: &BipartiteGraph, start: u32) -> Diameter {
    let mut dist = Vec::new();
    let (far, _) = bfs(graph, start, &mut dist);
    let (_, ecc) = bfs(graph, far, &mut dist);
    Diameter {
        value: ecc,
        exact: false,
        bfs_runs: 2,
    }
}

/// Exact diameter of the component containing the highest-degree node,
/// via iFUB with a BFS budget.
///
/// Returns `exact == false` (with the best lower bound found) if the budget
/// is exhausted — on this workspace's graphs convergence takes well under
/// 100 BFS.
#[must_use]
pub fn ifub_diameter(graph: &BipartiteGraph, max_bfs: u32) -> Diameter {
    // Start from the max-degree node: on hub-dominated graphs it is close
    // to the centre, which is what makes iFUB terminate quickly.
    let Some(start) = (0..graph.n_nodes() as u32).max_by_key(|&n| graph.degree(n)) else {
        return Diameter {
            value: 0,
            exact: true,
            bfs_runs: 0,
        };
    };
    if graph.degree(start) == 0 {
        return Diameter {
            value: 0,
            exact: true,
            bfs_runs: 0,
        };
    }
    let mut dist = Vec::new();
    let mut bfs_runs = 1u32;
    let (far, _root_ecc) = bfs(graph, start, &mut dist);
    // Level structure from the root.
    let levels = dist.clone();
    let max_level = levels
        .iter()
        .filter(|&&d| d != UNVISITED)
        .copied()
        .max()
        .unwrap_or(0);
    // Nodes bucketed by level, processed top (deepest) first.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
    for (n, &d) in levels.iter().enumerate() {
        if d != UNVISITED {
            buckets[d as usize].push(n as u32);
        }
    }
    // Initial lower bound from a double sweep.
    bfs_runs += 1;
    let (_, mut lb) = bfs(graph, far, &mut dist);

    // Invariant: nodes at level i have eccentricity <= 2i, so once
    // 2i <= lb no deeper level can beat the bound and lb is the diameter.
    let mut i = max_level;
    while i >= 1 && 2 * i > lb {
        // Examine every node at level i.
        for &node in &buckets[i as usize] {
            if bfs_runs >= max_bfs {
                return Diameter {
                    value: lb,
                    exact: false,
                    bfs_runs,
                };
            }
            bfs_runs += 1;
            let (_, ecc) = bfs(graph, node, &mut dist);
            lb = lb.max(ecc);
        }
        if lb > 2 * (i - 1) {
            return Diameter {
                value: lb,
                exact: true,
                bfs_runs,
            };
        }
        i -= 1;
    }
    Diameter {
        value: lb,
        exact: true,
        bfs_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_util::ids::EntityId;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    /// A path graph in bipartite form: e0 - s0 - e1 - s1 - e2 - ... with
    /// `n` entities and `n - 1` sites → diameter 2(n-1).
    fn path_graph(n: usize) -> BipartiteGraph {
        let sites: Vec<Vec<EntityId>> = (0..n - 1)
            .map(|s| vec![e(s as u32), e(s as u32 + 1)])
            .collect();
        BipartiteGraph::from_occurrences(n, &sites).expect("fixture ids lie inside the declared entity universe")
    }

    /// A star: one hub site covering all entities → diameter 2.
    fn star_graph(n: usize) -> BipartiteGraph {
        let all: Vec<EntityId> = (0..n as u32).map(e).collect();
        BipartiteGraph::from_occurrences(n, &[all]).expect("fixture ids lie inside the declared entity universe")
    }

    #[test]
    fn eccentricity_of_path_ends_and_middle() {
        let g = path_graph(5); // nodes: e0..e4, s0..s3; length 8 path
        assert_eq!(eccentricity(&g, 0), 8); // e0 end
        assert_eq!(eccentricity(&g, 2), 4); // middle entity e2
    }

    #[test]
    fn double_sweep_is_exact_on_paths_and_stars() {
        let g = path_graph(6);
        let d = double_sweep(&g, 2);
        assert_eq!(d.value, 10);
        assert_eq!(d.bfs_runs, 2);
        let s = star_graph(10);
        assert_eq!(double_sweep(&s, 0).value, 2);
    }

    #[test]
    fn ifub_exact_on_path() {
        let g = path_graph(7);
        let d = ifub_diameter(&g, 10_000);
        assert!(d.exact);
        assert_eq!(d.value, 12);
    }

    #[test]
    fn ifub_exact_on_star() {
        let g = star_graph(50);
        let d = ifub_diameter(&g, 10_000);
        assert!(d.exact);
        assert_eq!(d.value, 2);
        assert!(d.bfs_runs < 60);
    }

    #[test]
    fn ifub_on_two_hub_graph() {
        // Two hubs sharing one entity: diameter 4 (entity on hub A side to
        // entity on hub B side).
        let mut a: Vec<EntityId> = (0..20).map(e).collect();
        let b: Vec<EntityId> = (19..40).map(e).collect();
        a.push(e(19));
        let g = BipartiteGraph::from_occurrences(40, &[a, b]).expect("fixture ids lie inside the declared entity universe");
        let d = ifub_diameter(&g, 10_000);
        assert!(d.exact);
        assert_eq!(d.value, 4);
    }

    #[test]
    fn ifub_respects_budget() {
        let g = path_graph(64);
        let d = ifub_diameter(&g, 3);
        assert!(!d.exact);
        assert!(d.value <= 126);
        assert!(d.value >= 63, "lower bound should be substantial");
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let g = BipartiteGraph::from_occurrences(3, &[]).expect("the empty occurrence list is always valid");
        let d = ifub_diameter(&g, 100);
        assert!(d.exact);
        assert_eq!(d.value, 0);
    }

    #[test]
    fn ifub_ignores_smaller_components() {
        // Big component: star of 30; small: path of 2 entities (diam 2).
        let mut sites: Vec<Vec<EntityId>> = vec![(0..30).map(e).collect()];
        sites.push(vec![e(30), e(31)]);
        let g = BipartiteGraph::from_occurrences(32, &sites).expect("fixture ids lie inside the declared entity universe");
        let d = ifub_diameter(&g, 10_000);
        // Hub of the big star dominates: diameter of that component is 2.
        assert!(d.exact);
        assert_eq!(d.value, 2);
    }
}
