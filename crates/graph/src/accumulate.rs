//! Streaming construction of the entity–site graph from per-shard
//! partials.
//!
//! The batch path ([`BipartiteGraph::from_occurrences`]) wants the whole
//! per-site occurrence table at once — fine at scale 0.02, hostile to the
//! out-of-core pipeline, where each shard sees only its own sites and
//! nothing should hold per-page state for the whole corpus. A
//! [`GraphAccumulator`] is the spill-friendly middle: each shard folds
//! its pages into a private accumulator (edges dedup *incrementally*, so
//! a shard's memory is proportional to its distinct edges, not its
//! pages), the owner merges the partials in any order, and one
//! [`GraphAccumulator::finish`] call yields the same graph the batch
//! path builds.

use crate::bipartite::{BipartiteGraph, GraphError};
use webstruct_util::ids::{EntityId, SiteId};

/// How many un-deduped entries a site's edge list may buffer before it is
/// compacted in place. Bounds per-site memory at `distinct + 64` entries
/// no matter how many pages mention the same entities.
const COMPACT_SLACK: usize = 64;

/// Incremental, mergeable builder for [`BipartiteGraph`].
#[derive(Debug, Clone)]
pub struct GraphAccumulator {
    n_entities: usize,
    /// Per-site entity lists: a sorted, deduped prefix of `sorted[s]`
    /// entries followed by an unsorted tail of recent inserts.
    sites: Vec<Vec<EntityId>>,
    sorted: Vec<usize>,
}

impl GraphAccumulator {
    /// Empty accumulator over a fixed `(n_entities, n_sites)` universe.
    #[must_use]
    pub fn new(n_entities: usize, n_sites: usize) -> Self {
        GraphAccumulator {
            n_entities,
            sites: vec![Vec::new(); n_sites],
            sorted: vec![0; n_sites],
        }
    }

    /// Number of sites tracked.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Record that `site` mentions `entity` (idempotent — duplicate
    /// observations collapse, eventually, into one edge).
    ///
    /// # Panics
    /// Panics when `site` is out of range.
    pub fn add_occurrence(&mut self, site: SiteId, entity: EntityId) {
        let s = site.index();
        self.sites[s].push(entity);
        if self.sites[s].len() >= self.sorted[s] + COMPACT_SLACK {
            compact(&mut self.sites[s]);
            self.sorted[s] = self.sites[s].len();
        }
    }

    /// Record a page's worth of entities for `site`.
    ///
    /// # Panics
    /// Panics when `site` is out of range.
    pub fn add_page(&mut self, site: SiteId, entities: &[EntityId]) {
        for &e in entities {
            self.add_occurrence(site, e);
        }
    }

    /// Fold another accumulator over the same universe into this one.
    /// Site-sharded runs merge disjoint sites (the common case moves the
    /// shard's lists without copying); overlapping sites union correctly
    /// too. Commutative and associative, so shard completion order cannot
    /// change [`GraphAccumulator::finish`]'s output.
    ///
    /// # Panics
    /// Panics when the accumulators disagree on the universe.
    pub fn merge(&mut self, other: GraphAccumulator) {
        assert_eq!(self.n_entities, other.n_entities, "entity universe mismatch");
        assert_eq!(self.n_sites(), other.n_sites(), "site universe mismatch");
        for (s, src) in other.sites.into_iter().enumerate() {
            if src.is_empty() {
                continue;
            }
            if self.sites[s].is_empty() {
                self.sorted[s] = if other.sorted[s] == src.len() { src.len() } else { 0 };
                self.sites[s] = src;
            } else {
                self.sites[s].extend(src);
                compact(&mut self.sites[s]);
                self.sorted[s] = self.sites[s].len();
            }
        }
    }

    /// Compact every buffered edge list and build the CSR graph —
    /// identical to [`BipartiteGraph::from_occurrences`] over the union
    /// of everything recorded.
    ///
    /// # Errors
    /// [`GraphError::EntityOutOfRange`] when a recorded entity falls
    /// outside the universe.
    pub fn finish(mut self) -> Result<BipartiteGraph, GraphError> {
        for list in &mut self.sites {
            compact(list);
        }
        BipartiteGraph::from_occurrences(self.n_entities, &self.sites)
    }
}

/// Sort + dedup one site's edge list in place.
fn compact(list: &mut Vec<EntityId>) {
    list.sort_unstable();
    list.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId::new(id)
    }

    fn s(id: u32) -> SiteId {
        SiteId::new(id)
    }

    #[test]
    fn accumulated_graph_matches_batch_construction() {
        let site_lists: Vec<Vec<EntityId>> = vec![
            vec![e(0), e(1), e(2)],
            vec![e(1), e(2)],
            vec![],
            vec![e(3), e(3), e(0)],
        ];
        let batch = BipartiteGraph::from_occurrences(4, &site_lists).unwrap();
        // Feed the same data page-wise through two shard accumulators,
        // merged in reverse order.
        let mut shard_a = GraphAccumulator::new(4, 4);
        shard_a.add_page(s(0), &[e(0), e(1)]);
        shard_a.add_page(s(0), &[e(1), e(2)]); // duplicate edge (0,1) collapses
        shard_a.add_page(s(1), &[e(2)]);
        let mut shard_b = GraphAccumulator::new(4, 4);
        shard_b.add_page(s(1), &[e(1)]);
        shard_b.add_page(s(3), &[e(3), e(3), e(0)]);
        let mut merged = GraphAccumulator::new(4, 4);
        merged.merge(shard_b);
        merged.merge(shard_a);
        let streamed = merged.finish().unwrap();
        assert_eq!(streamed.n_edges(), batch.n_edges());
        for i in 0..4u32 {
            assert_eq!(streamed.sites_of(e(i)), batch.sites_of(e(i)), "entity {i}");
            assert_eq!(
                streamed.entities_of(s(i)),
                batch.entities_of(s(i)),
                "site {i}"
            );
        }
    }

    #[test]
    fn incremental_dedup_bounds_memory() {
        let mut acc = GraphAccumulator::new(2, 1);
        // 10k observations of the same two entities must not buffer 10k
        // entries: the compaction slack caps the list length.
        for _ in 0..10_000 {
            acc.add_occurrence(s(0), e(0));
            acc.add_occurrence(s(0), e(1));
        }
        assert!(
            acc.sites[0].len() <= 2 + COMPACT_SLACK,
            "buffered {} entries",
            acc.sites[0].len()
        );
        let g = acc.finish().unwrap();
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn out_of_range_entity_surfaces_at_finish() {
        let mut acc = GraphAccumulator::new(2, 1);
        acc.add_occurrence(s(0), e(7));
        assert!(matches!(
            acc.finish(),
            Err(GraphError::EntityOutOfRange { entity: 7, .. })
        ));
    }

    #[test]
    fn empty_accumulator_finishes_to_empty_graph() {
        let g = GraphAccumulator::new(3, 2).finish().unwrap();
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.n_sites(), 2);
        assert_eq!(g.n_entities(), 3);
    }
}
