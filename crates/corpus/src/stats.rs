//! Corpus diagnostics: checkable summaries of a generated web.
//!
//! The substitution argument in DESIGN.md rests on the generated web
//! having the right first-order statistics (heavy-tailed site sizes,
//! popularity-skewed mention counts). This module computes them, so both
//! tests and reports can verify the claims instead of assuming them.

use crate::domain::Attribute;
use crate::site::SiteKind;
use crate::web::Web;
use webstruct_util::powerlaw::{hill_estimator, LogHistogram};
use webstruct_util::stats::gini;

/// Summary statistics of one generated web.
#[derive(Debug, Clone)]
pub struct WebStats {
    /// Total sites with at least one mention.
    pub nonempty_sites: usize,
    /// Total (site, entity) mentions.
    pub mentions: usize,
    /// Site-size Gini coefficient (concentration of mentions on sites).
    pub site_gini: f64,
    /// Hill estimate of the site-size tail exponent (`None` when the
    /// corpus is too small to estimate).
    pub site_tail_exponent: Option<f64>,
    /// Log₂ histogram of site sizes.
    pub site_size_histogram: LogHistogram,
    /// Mentions held by each site kind: (aggregator, regional, niche).
    pub mentions_by_kind: (usize, usize, usize),
}

/// Compute [`WebStats`] for one attribute's occurrence relation.
#[must_use]
pub fn web_stats(web: &Web, attr: Attribute) -> WebStats {
    let lists = web.occurrence_lists(attr);
    let sizes: Vec<f64> = lists
        .iter()
        .map(|l| l.len() as f64)
        .filter(|&s| s > 0.0)
        .collect();
    let mentions: usize = lists.iter().map(Vec::len).sum();
    let mut by_kind = (0usize, 0usize, 0usize);
    for (site, list) in web.sites.iter().zip(&lists) {
        match site.kind {
            SiteKind::Aggregator => by_kind.0 += list.len(),
            SiteKind::Regional => by_kind.1 += list.len(),
            SiteKind::Niche => by_kind.2 += list.len(),
        }
    }
    let k = (sizes.len() / 10).max(10).min(sizes.len().saturating_sub(1));
    WebStats {
        nonempty_sites: sizes.len(),
        mentions,
        site_gini: gini(&sizes),
        site_tail_exponent: hill_estimator(&sizes, k),
        site_size_histogram: LogHistogram::build(&sizes),
        mentions_by_kind: by_kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::entity::{CatalogConfig, EntityCatalog};
    use crate::web::WebConfig;
    use webstruct_util::rng::Seed;

    fn stats() -> WebStats {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 2_000), Seed(121));
        let web = crate::web::Web::generate(
            &catalog,
            &WebConfig::preset(Domain::Restaurants).scaled(0.05),
            Seed(121),
        );
        web_stats(&web, Attribute::Phone)
    }

    #[test]
    fn site_sizes_are_heavy_tailed() {
        let s = stats();
        assert!(s.nonempty_sites > 500);
        assert!(s.mentions > s.nonempty_sites, "multiple mentions per site");
        // Strong concentration: a few aggregators hold a large share.
        assert!(
            s.site_gini > 0.5,
            "site-size Gini {} should show concentration",
            s.site_gini
        );
        // The histogram spans several octaves.
        assert!(s.site_size_histogram.counts.len() >= 6);
    }

    #[test]
    fn tail_exponent_is_estimable_and_plausible() {
        let s = stats();
        let alpha = s.site_tail_exponent.expect("estimable at this scale");
        // Web site-size distributions have survival exponents around ~1;
        // accept a broad band — the point is the estimate exists and is
        // not degenerate.
        assert!((0.2..5.0).contains(&alpha), "alpha {alpha}");
    }

    #[test]
    fn aggregators_hold_the_plurality_of_mentions() {
        let s = stats();
        let (agg, regional, niche) = s.mentions_by_kind;
        assert_eq!(agg + regional + niche, s.mentions);
        assert!(agg > 0 && regional > 0 && niche > 0);
        // The head outweighs any single tail class per-site by far, but in
        // aggregate the tail classes matter — the paper's whole point.
        assert!(
            regional + niche > agg / 4,
            "tail mention mass must be substantial: agg {agg}, tail {}",
            regional + niche
        );
    }
}
