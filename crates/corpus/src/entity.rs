//! Entity catalogs: the stand-in for the Yahoo! business-listings and ISBN
//! databases.
//!
//! A catalog is the *reference database* of the study — the comprehensive
//! entity list whose spread over the synthetic web we measure. Entities are
//! generated in popularity order: `EntityId(0)` is the most popular entity
//! in the domain (rank 0), mirroring the rank-based analyses in the paper.

use crate::domain::Domain;
use crate::isbn::Isbn;
use crate::phone::PhoneNumber;
use webstruct_util::hash::{fx_map_with_capacity, fx_set_with_capacity, FxHashMap};
use webstruct_util::ids::{EntityId, RegionId};
use webstruct_util::rng::{Seed, Xoshiro256};

/// One structured entity (a restaurant, a bank branch, a book, ...).
#[derive(Debug, Clone)]
pub struct Entity {
    /// Dense id; doubles as the popularity rank (0 = head).
    pub id: EntityId,
    /// Display name, unique within the catalog.
    pub name: String,
    /// Geographic region (metro area). Always `RegionId(0)` for books.
    pub region: RegionId,
    /// Identifying phone number (local businesses only).
    pub phone: Option<PhoneNumber>,
    /// Homepage host, e.g. `golden-harbor-bistro.com` (when the business
    /// has a website at all).
    pub homepage: Option<String>,
    /// ISBN (books only).
    pub isbn: Option<Isbn>,
}

/// Configuration for catalog generation.
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// The domain to generate.
    pub domain: Domain,
    /// Number of entities.
    pub n_entities: usize,
    /// Number of geographic regions (ignored for books).
    pub n_regions: usize,
    /// Probability that the most popular entity has its own homepage.
    pub homepage_prob_head: f64,
    /// Probability that the least popular entity has its own homepage.
    pub homepage_prob_tail: f64,
}

impl CatalogConfig {
    /// A reasonable default for a domain at the given scale.
    #[must_use]
    pub fn new(domain: Domain, n_entities: usize) -> Self {
        CatalogConfig {
            domain,
            n_entities,
            n_regions: if domain.is_local_business() { 64 } else { 1 },
            homepage_prob_head: 0.95,
            homepage_prob_tail: 0.35,
        }
    }
}

/// The reference database of entities for one domain, with identifier
/// indexes used both by the generator (uniqueness) and by the extraction
/// pipeline (matching page text back to entities).
#[derive(Debug, Clone)]
pub struct EntityCatalog {
    /// The domain.
    pub domain: Domain,
    /// Entities, indexed by `EntityId::index()`; position = popularity rank.
    pub entities: Vec<Entity>,
    /// Number of regions used.
    pub n_regions: usize,
    phone_index: FxHashMap<u64, EntityId>,
    isbn_index: FxHashMap<u32, EntityId>,
    homepage_index: FxHashMap<String, EntityId>,
}

impl EntityCatalog {
    /// Generate a catalog deterministically from a seed.
    ///
    /// # Panics
    /// Panics if `n_entities == 0` or `n_regions == 0`.
    #[must_use]
    pub fn generate(config: &CatalogConfig, seed: Seed) -> Self {
        assert!(config.n_entities > 0, "catalog must have entities");
        assert!(config.n_regions > 0, "catalog must have >= 1 region");
        let mut rng = Xoshiro256::from_seed(seed.derive("catalog").derive(config.domain.slug()));
        let n = config.n_entities;
        let mut entities = Vec::with_capacity(n);
        let mut phone_index = fx_map_with_capacity(n);
        let mut isbn_index = fx_map_with_capacity(n);
        let mut homepage_index = fx_map_with_capacity(n);
        let mut used_phones = fx_set_with_capacity::<u64>(n);
        let mut used_isbns = fx_set_with_capacity::<u32>(n);
        let mut namer = NameGenerator::new(config.domain);

        for i in 0..n {
            let id = EntityId::new(i as u32);
            let name = namer.next_name(&mut rng);
            let region = RegionId::new(rng.u64_below(config.n_regions as u64) as u32);
            let (phone, isbn) = if config.domain == Domain::Books {
                let isbn = loop {
                    let core = rng.u64_below(1_000_000_000) as u32;
                    if used_isbns.insert(core) {
                        break Isbn::new(u64::from(core)).expect("core < 10^9");
                    }
                };
                isbn_index.insert(isbn.core(), id);
                (None, Some(isbn))
            } else {
                let phone = loop {
                    let p = PhoneNumber::random(&mut rng);
                    if used_phones.insert(p.digits()) {
                        break p;
                    }
                };
                phone_index.insert(phone.digits(), id);
                (Some(phone), None)
            };
            // Homepage presence decays linearly in popularity rank, between
            // the configured head and tail probabilities. Books get
            // publisher pages rarely; treat the same knobs uniformly.
            let rank_frac = if n > 1 { i as f64 / (n - 1) as f64 } else { 0.0 };
            let p_homepage = config.homepage_prob_head
                + (config.homepage_prob_tail - config.homepage_prob_head) * rank_frac;
            let homepage = if rng.bool_with(p_homepage) {
                let host = namer.homepage_host(&name, i);
                homepage_index.insert(host.clone(), id);
                Some(host)
            } else {
                None
            };
            entities.push(Entity {
                id,
                name,
                region,
                phone,
                homepage,
                isbn,
            });
        }
        EntityCatalog {
            domain: config.domain,
            entities,
            n_regions: config.n_regions,
            phone_index,
            isbn_index,
            homepage_index,
        }
    }

    /// Number of entities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when the catalog is empty (never after generation).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Entity by id.
    #[must_use]
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// Look up an entity by canonical phone digits.
    #[must_use]
    pub fn by_phone(&self, digits: u64) -> Option<EntityId> {
        self.phone_index.get(&digits).copied()
    }

    /// Look up an entity by ISBN core.
    #[must_use]
    pub fn by_isbn(&self, core: u32) -> Option<EntityId> {
        self.isbn_index.get(&core).copied()
    }

    /// Look up an entity by homepage host.
    #[must_use]
    pub fn by_homepage(&self, host: &str) -> Option<EntityId> {
        self.homepage_index.get(host).copied()
    }

    /// Entities that have a homepage.
    pub fn with_homepage(&self) -> impl Iterator<Item = &Entity> {
        self.entities.iter().filter(|e| e.homepage.is_some())
    }

    /// Popularity weight of entity `id` under rank-Zipf with exponent
    /// `alpha` (unnormalised).
    #[must_use]
    pub fn popularity_weight(&self, id: EntityId, alpha: f64) -> f64 {
        (id.index() as f64 + 1.0).powf(-alpha)
    }
}

/// Domain-aware unique name generation.
struct NameGenerator {
    domain: Domain,
    used: webstruct_util::FxHashSet<String>,
}

const ADJECTIVES: &[&str] = &[
    "Golden", "Silver", "Harbor", "Sunset", "Lucky", "Royal", "Grand", "Blue", "Green", "Copper",
    "Iron", "Maple", "Cedar", "Summit", "Valley", "River", "Lake", "Prairie", "Coastal", "Urban",
    "Vintage", "Modern", "Classic", "Northern", "Southern", "Eastern", "Western", "Central",
    "Happy", "Bright", "Crimson", "Amber", "Ivory", "Jade", "Pearl", "Ruby", "Velvet", "Stone",
];

const NOUNS: &[&str] = &[
    "Dragon", "Phoenix", "Garden", "Star", "Crown", "Anchor", "Compass", "Lantern", "Bridge",
    "Meadow", "Orchard", "Harvest", "Spring", "Grove", "Hollow", "Ridge", "Point", "Bay",
    "Field", "Creek", "Falls", "Bluff", "Glen", "Haven", "Mill", "Forge", "Crossing", "Corner",
];

impl NameGenerator {
    fn new(domain: Domain) -> Self {
        NameGenerator {
            domain,
            used: webstruct_util::FxHashSet::default(),
        }
    }

    fn suffix(&self, rng: &mut Xoshiro256) -> &'static str {
        let options: &[&str] = match self.domain {
            Domain::Restaurants => &["Bistro", "Cafe", "Grill", "Kitchen", "Diner", "Trattoria"],
            Domain::Automotive => &["Auto Repair", "Motors", "Tire & Lube", "Auto Body"],
            Domain::Banks => &["Bank", "Credit Union", "Savings Bank", "Trust"],
            Domain::Libraries => &["Public Library", "Branch Library", "Community Library"],
            Domain::Schools => &["Elementary School", "High School", "Academy", "Middle School"],
            Domain::HotelsLodging => &["Hotel", "Inn", "Lodge", "Suites", "Motel"],
            Domain::RetailShopping => &["Outfitters", "Emporium", "Boutique", "Market", "Shop"],
            Domain::HomeGarden => &["Nursery", "Hardware", "Home Center", "Landscaping"],
            Domain::Books => &[
                "A Novel",
                "Stories",
                "A Memoir",
                "Field Guide",
                "An Introduction",
                "Collected Essays",
            ],
        };
        options[rng.usize_below(options.len())]
    }

    fn next_name(&mut self, rng: &mut Xoshiro256) -> String {
        loop {
            let adj = ADJECTIVES[rng.usize_below(ADJECTIVES.len())];
            let noun = NOUNS[rng.usize_below(NOUNS.len())];
            let suffix = self.suffix(rng);
            let base = if self.domain == Domain::Books {
                format!("The {adj} {noun}: {suffix}")
            } else {
                format!("{adj} {noun} {suffix}")
            };
            let candidate = if self.used.contains(&base) {
                // Disambiguate collisions with a short numeric tag, as real
                // chains do ("Golden Dragon Cafe No. 27").
                let mut k = 2u32;
                loop {
                    let c = format!("{base} No. {k}");
                    if !self.used.contains(&c) {
                        break c;
                    }
                    k += 1;
                }
            } else {
                base
            };
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }

    /// Slugified homepage host: unique because entity index is embedded
    /// when the slug alone is ambiguous.
    fn homepage_host(&self, name: &str, index: usize) -> String {
        let mut slug = String::with_capacity(name.len());
        for c in name.chars() {
            if c.is_ascii_alphanumeric() {
                slug.push(c.to_ascii_lowercase());
            } else if (c == ' ' || c == '-') && !slug.ends_with('-') {
                slug.push('-');
            }
        }
        let slug = slug.trim_matches('-');
        format!("{slug}-{index}.example.com")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_catalog(domain: Domain) -> EntityCatalog {
        EntityCatalog::generate(&CatalogConfig::new(domain, 500), Seed(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_catalog(Domain::Restaurants);
        let b = small_catalog(Domain::Restaurants);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.entities.iter().zip(&b.entities) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.phone.map(PhoneNumber::digits), y.phone.map(PhoneNumber::digits));
            assert_eq!(x.homepage, y.homepage);
        }
    }

    #[test]
    fn different_domains_get_different_catalogs() {
        let a = small_catalog(Domain::Restaurants);
        let b = small_catalog(Domain::Banks);
        assert_ne!(a.entities[0].name, b.entities[0].name);
    }

    #[test]
    fn local_business_catalog_shape() {
        let c = small_catalog(Domain::Restaurants);
        assert_eq!(c.len(), 500);
        assert!(!c.is_empty());
        for e in &c.entities {
            assert!(e.phone.is_some(), "local businesses must have phones");
            assert!(e.isbn.is_none());
            assert!(e.region.index() < c.n_regions);
        }
        // Phones are unique.
        let mut phones: Vec<u64> = c.entities.iter().map(|e| e.phone.unwrap().digits()).collect();
        phones.sort_unstable();
        phones.dedup();
        assert_eq!(phones.len(), 500);
    }

    #[test]
    fn books_catalog_shape() {
        let c = small_catalog(Domain::Books);
        for e in &c.entities {
            assert!(e.isbn.is_some(), "books must have ISBNs");
            assert!(e.phone.is_none());
            assert_eq!(e.region, RegionId::new(0), "books are not regional");
        }
        let mut isbns: Vec<u32> = c.entities.iter().map(|e| e.isbn.unwrap().core()).collect();
        isbns.sort_unstable();
        isbns.dedup();
        assert_eq!(isbns.len(), 500);
    }

    #[test]
    fn names_are_unique() {
        let c = small_catalog(Domain::HotelsLodging);
        let mut names: Vec<&str> = c.entities.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn indexes_resolve_back_to_entities() {
        let c = small_catalog(Domain::Schools);
        for e in &c.entities {
            assert_eq!(c.by_phone(e.phone.unwrap().digits()), Some(e.id));
            if let Some(h) = &e.homepage {
                assert_eq!(c.by_homepage(h), Some(e.id));
            }
        }
        assert_eq!(c.by_phone(1), None);
        assert_eq!(c.by_isbn(7), None);
        assert_eq!(c.by_homepage("unknown.example.com"), None);

        let books = small_catalog(Domain::Books);
        for e in &books.entities {
            assert_eq!(books.by_isbn(e.isbn.unwrap().core()), Some(e.id));
        }
    }

    #[test]
    fn homepage_presence_decays_with_rank() {
        let c = EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 4000), Seed(7));
        let head: Vec<_> = c.entities[..1000].iter().collect();
        let tail: Vec<_> = c.entities[3000..].iter().collect();
        let head_frac =
            head.iter().filter(|e| e.homepage.is_some()).count() as f64 / head.len() as f64;
        let tail_frac =
            tail.iter().filter(|e| e.homepage.is_some()).count() as f64 / tail.len() as f64;
        assert!(
            head_frac > tail_frac + 0.2,
            "head {head_frac} vs tail {tail_frac}"
        );
    }

    #[test]
    fn homepage_hosts_are_wellformed() {
        let c = small_catalog(Domain::RetailShopping);
        for e in c.with_homepage() {
            let h = e.homepage.as_ref().unwrap();
            assert!(h.ends_with(".example.com"), "{h}");
            assert!(!h.starts_with('-'));
            assert!(
                h.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '-' || ch == '.'),
                "{h}"
            );
        }
    }

    #[test]
    fn popularity_weight_is_rank_zipf() {
        let c = small_catalog(Domain::Banks);
        let w0 = c.popularity_weight(EntityId::new(0), 1.0);
        let w9 = c.popularity_weight(EntityId::new(9), 1.0);
        assert!((w0 - 1.0).abs() < 1e-12);
        assert!((w9 - 0.1).abs() < 1e-12);
        // alpha = 0 → uniform.
        assert_eq!(c.popularity_weight(EntityId::new(100), 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "must have entities")]
    fn empty_catalog_rejected() {
        let _ = EntityCatalog::generate(&CatalogConfig::new(Domain::Banks, 0), Seed(1));
    }
}
