//! Content-addressed extraction cache: per-shard extraction results
//! serialized beside the page shards they were computed from.
//!
//! ## Why it exists
//!
//! Rendering + extraction dominates every run, yet between epochs most
//! shards' bytes do not change. The cache keys each shard's extraction
//! payload by **content**, not by time: the shard's `WSP1` payload
//! SHA-256 (already stamped in the shard header and vouched for by
//! `MANIFEST.wsm`) plus an extractor-config fingerprint. If either key
//! changes — the shard re-rendered under a bumped site revision, or the
//! extractor version/config moved — the entry simply stops matching and
//! is recomputed. There is no invalidation protocol to get wrong.
//!
//! ## On-disk layout
//!
//! One file per shard, `ext-NNNNN.wse`, little-endian:
//!
//! ```text
//! header (112 bytes)
//!   magic        [u8; 4]    = b"WSE1"
//!   version      u32        = 1
//!   shard_sha    [u8; 32]     payload SHA-256 of the source shard
//!   extractor_fp [u8; 32]     extractor version/config fingerprint
//!   payload_len  u64          payload bytes after the header
//!   payload_sha  [u8; 32]     SHA-256 of the payload bytes
//! payload: opaque serialized extraction snapshot (owned by
//!   `webstruct-extract`; this crate never interprets it)
//! ```
//!
//! Files are written with the store's durability protocol (tmp → fsync →
//! rename → dir fsync) and committed to the manifest's `ext` section
//! through the same atomic recommit as the shards. A load verifies all
//! four header keys **and** re-hashes the payload; any disagreement is a
//! [`ExtLoad::Poisoned`] — detected, counted, recomputed, never trusted.

use crate::manifest::ExtEntry;
use crate::shard::{ShardError, TempFileGuard};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use webstruct_util::iofault::FaultSession;
use webstruct_util::sha::Sha256;

/// Extraction-cache file magic: "WebStruct Extractions v1".
pub const EXT_MAGIC: [u8; 4] = *b"WSE1";
/// Current cache file format version.
pub const EXT_VERSION: u32 = 1;
/// Header size in bytes.
pub const EXT_HEADER_LEN: usize = 112;

/// Cache file name for shard `i` (lives beside `shard-NNNNN.wsp`).
#[must_use]
pub fn ext_name(i: usize) -> String {
    format!("ext-{i:05}.wse")
}

/// Path of shard `i`'s cache entry inside `dir`.
#[must_use]
pub fn ext_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(ext_name(i))
}

/// Parsed cache-file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtCacheHeader {
    /// Payload SHA-256 of the shard this entry was extracted from.
    pub shard_sha: [u8; 32],
    /// Extractor version/config fingerprint the payload was computed with.
    pub extractor_fp: [u8; 32],
    /// Payload bytes after the header.
    pub payload_len: u64,
    /// SHA-256 of the payload.
    pub payload_sha: [u8; 32],
}

fn encode_ext_header(h: &ExtCacheHeader) -> [u8; EXT_HEADER_LEN] {
    let mut head = [0u8; EXT_HEADER_LEN];
    head[0..4].copy_from_slice(&EXT_MAGIC);
    head[4..8].copy_from_slice(&EXT_VERSION.to_le_bytes());
    head[8..40].copy_from_slice(&h.shard_sha);
    head[40..72].copy_from_slice(&h.extractor_fp);
    head[72..80].copy_from_slice(&h.payload_len.to_le_bytes());
    head[80..112].copy_from_slice(&h.payload_sha);
    head
}

/// Read and decode a cache-file header from `path` (112 bytes of I/O).
///
/// # Errors
/// [`ShardError::Truncated`] / [`ShardError::BadMagic`] /
/// [`ShardError::BadVersion`], or I/O errors.
pub fn read_ext_header(path: &Path) -> Result<ExtCacheHeader, ShardError> {
    let mut file = std::fs::File::open(path)?;
    let mut head = [0u8; EXT_HEADER_LEN];
    let mut filled = 0usize;
    while filled < EXT_HEADER_LEN {
        let n = file.read(&mut head[filled..])?;
        if n == 0 {
            return Err(ShardError::Truncated {
                expected: EXT_HEADER_LEN as u64,
                got: filled as u64,
            });
        }
        filled += n;
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&head[0..4]);
    if magic != EXT_MAGIC {
        return Err(ShardError::BadMagic(magic));
    }
    let version = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    if version != EXT_VERSION {
        return Err(ShardError::BadVersion(version));
    }
    Ok(ExtCacheHeader {
        shard_sha: head[8..40].try_into().expect("32 bytes"),
        extractor_fp: head[40..72].try_into().expect("32 bytes"),
        payload_len: u64::from_le_bytes(head[72..80].try_into().expect("8 bytes")),
        payload_sha: head[80..112].try_into().expect("32 bytes"),
    })
}

/// Write shard `i`'s extraction payload crash-safely under `dir` (tmp →
/// fsync → rename → dir fsync, every step charged to `session`) and
/// return the manifest entry that vouches for it.
///
/// # Errors
/// Propagates injected or real I/O failures; the temp file is removed on
/// the error path.
pub fn write_entry(
    dir: &Path,
    i: usize,
    shard_sha: [u8; 32],
    extractor_fp: [u8; 32],
    payload: &[u8],
    session: &FaultSession,
) -> Result<ExtEntry, ShardError> {
    let mut sha = Sha256::new();
    sha.update(payload);
    let header = ExtCacheHeader {
        shard_sha,
        extractor_fp,
        payload_len: payload.len() as u64,
        payload_sha: sha.finalize(),
    };
    let final_path = ext_path(dir, i);
    let tmp = dir.join(format!("{}.tmp", ext_name(i)));
    let guard = TempFileGuard::new(tmp.clone());
    let mut file = session.create(&tmp)?;
    file.write_all(&encode_ext_header(&header))?;
    file.write_all(payload)?;
    file.sync_all()?;
    drop(file);
    session.rename(&tmp, &final_path)?;
    guard.disarm();
    session.sync_dir(dir)?;
    Ok(ExtEntry {
        file: ext_name(i),
        payload_len: header.payload_len,
        sha256: header.payload_sha,
    })
}

/// Outcome of a cache lookup.
#[derive(Debug)]
pub enum ExtLoad {
    /// Keys and digests all verified; here is the payload.
    Hit(Vec<u8>),
    /// No cache file on disk.
    Miss,
    /// The file exists but cannot be trusted: wrong key (stale shard or
    /// extractor), digest mismatch (bitrot), truncation, or a manifest
    /// disagreement. The string names the first failed check.
    Poisoned(&'static str),
}

/// Load shard `i`'s cached extraction payload, verifying every key:
/// magic/version, the manifest entry's file name, the shard payload
/// digest, the extractor fingerprint, the recorded payload length and —
/// by re-hashing every payload byte — the payload digest itself.
#[must_use]
pub fn load_entry(
    dir: &Path,
    i: usize,
    entry: &ExtEntry,
    shard_sha: [u8; 32],
    extractor_fp: [u8; 32],
) -> ExtLoad {
    let path = dir.join(&entry.file);
    if entry.file != ext_name(i) {
        return ExtLoad::Poisoned("manifest entry names the wrong file");
    }
    if !path.exists() {
        return ExtLoad::Miss;
    }
    let header = match read_ext_header(&path) {
        Ok(h) => h,
        Err(_) => return ExtLoad::Poisoned("unreadable cache header"),
    };
    if header.shard_sha != shard_sha {
        return ExtLoad::Poisoned("shard digest mismatch (stale entry)");
    }
    if header.extractor_fp != extractor_fp {
        return ExtLoad::Poisoned("extractor fingerprint mismatch");
    }
    if header.payload_len != entry.payload_len || header.payload_sha != entry.sha256 {
        return ExtLoad::Poisoned("cache header disagrees with manifest");
    }
    let mut file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(_) => return ExtLoad::Poisoned("cache file unreadable"),
    };
    let mut bytes = Vec::new();
    if file.read_to_end(&mut bytes).is_err() || bytes.len() < EXT_HEADER_LEN {
        return ExtLoad::Poisoned("cache file truncated");
    }
    let payload = bytes.split_off(EXT_HEADER_LEN);
    if payload.len() as u64 != header.payload_len {
        return ExtLoad::Poisoned("cache payload truncated");
    }
    let mut sha = Sha256::new();
    sha.update(&payload);
    if sha.finalize() != header.payload_sha {
        return ExtLoad::Poisoned("cache payload digest mismatch");
    }
    ExtLoad::Hit(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("webstruct-extcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let payload = b"serialized extraction bytes".to_vec();
        let entry = write_entry(&dir, 3, [7u8; 32], [9u8; 32], &payload, &FaultSession::clean())
            .expect("write entry");
        assert_eq!(entry.file, "ext-00003.wse");
        assert_eq!(entry.payload_len, payload.len() as u64);
        match load_entry(&dir, 3, &entry, [7u8; 32], [9u8; 32]) {
            ExtLoad::Hit(bytes) => assert_eq!(bytes, payload),
            other => panic!("want hit, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_keys_poison_the_entry() {
        let dir = tmpdir("keys");
        let entry = write_entry(&dir, 0, [7u8; 32], [9u8; 32], b"x", &FaultSession::clean())
            .expect("write entry");
        assert!(matches!(
            load_entry(&dir, 0, &entry, [8u8; 32], [9u8; 32]),
            ExtLoad::Poisoned("shard digest mismatch (stale entry)")
        ));
        assert!(matches!(
            load_entry(&dir, 0, &entry, [7u8; 32], [1u8; 32]),
            ExtLoad::Poisoned("extractor fingerprint mismatch")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_payload_is_detected() {
        let dir = tmpdir("bitflip");
        let payload = vec![0xAB; 256];
        let entry = write_entry(&dir, 1, [7u8; 32], [9u8; 32], &payload, &FaultSession::clean())
            .expect("write entry");
        let path = ext_path(&dir, 1);
        let mut bytes = std::fs::read(&path).expect("read back");
        bytes[EXT_HEADER_LEN + 100] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(
            load_entry(&dir, 1, &entry, [7u8; 32], [9u8; 32]),
            ExtLoad::Poisoned("cache payload digest mismatch")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_miss_not_poison() {
        let dir = tmpdir("miss");
        let entry = ExtEntry {
            file: ext_name(2),
            payload_len: 4,
            sha256: [0u8; 32],
        };
        assert!(matches!(
            load_entry(&dir, 2, &entry, [0u8; 32], [0u8; 32]),
            ExtLoad::Miss
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
