//! Text models: review language vs. directory boilerplate.
//!
//! The paper detects restaurant reviews with "a Naïve-Bayes classifier over
//! the textual content". For that classifier (in `webstruct-extract`) to
//! have a real job, generated pages must contain genuinely different token
//! distributions for review content and listing boilerplate. These word
//! lists and sentence templates provide that — with deliberate vocabulary
//! overlap so classification is non-trivial.

use webstruct_util::rng::Xoshiro256;

/// Words common in user reviews (opinionated register).
pub const REVIEW_OPENERS: &[&str] = &[
    "I visited",
    "We stopped by",
    "My family tried",
    "A friend recommended",
    "We finally checked out",
    "I have been coming to",
    "Last weekend we went to",
];

/// Positive sentiment adjectives.
pub const SENTIMENT_POS: &[&str] = &[
    "amazing", "delicious", "friendly", "cozy", "fantastic", "wonderful", "charming",
    "attentive", "generous", "fresh", "outstanding", "lovely",
];

/// Negative sentiment adjectives.
pub const SENTIMENT_NEG: &[&str] = &[
    "disappointing", "bland", "slow", "overpriced", "noisy", "cramped", "rude",
    "forgettable", "stale", "chaotic",
];

/// Aspects reviewers comment on.
pub const REVIEW_ASPECTS: &[&str] = &[
    "service", "food", "atmosphere", "staff", "menu", "dessert", "portions", "prices",
    "selection", "experience", "location", "parking",
];

/// Closing phrases of reviews.
pub const REVIEW_CLOSERS: &[&str] = &[
    "Highly recommended.",
    "Would definitely come back.",
    "Five stars from me.",
    "Two thumbs up.",
    "I will not be returning.",
    "Worth the drive.",
    "Save your money.",
    "Ask for the daily special.",
];

/// Directory boilerplate sentences (the non-review register).
pub const BOILERPLATE: &[&str] = &[
    "Hours of operation may vary on holidays.",
    "Browse all listings in your neighborhood.",
    "Get directions and contact information below.",
    "Sponsored results appear at the top of the page.",
    "Claim this listing to update business details.",
    "Advertise with us to reach local customers.",
    "Categories: local services, directory, listings.",
    "Copyright and terms of service apply to all content.",
    "Sign in to save your favorite businesses.",
    "Data provided by the local business registry.",
    "See nearby businesses on the map view.",
    "Report incorrect information using the feedback form.",
];

/// Generate one review paragraph about `entity_name`.
///
/// Roughly 70% of reviews are positive, matching the well-known skew of
/// online review corpora.
#[must_use]
pub fn review_paragraph(rng: &mut Xoshiro256, entity_name: &str) -> String {
    let mut out = String::new();
    review_paragraph_into(rng, entity_name, &mut out);
    out
}

/// Append one review paragraph to `out` without allocating. RNG draw
/// order is identical to [`review_paragraph`], so the bytes match too.
pub fn review_paragraph_into(rng: &mut Xoshiro256, entity_name: &str, out: &mut String) {
    use std::fmt::Write;
    let opener = REVIEW_OPENERS[rng.usize_below(REVIEW_OPENERS.len())];
    let positive = rng.bool_with(0.7);
    let bank = if positive { SENTIMENT_POS } else { SENTIMENT_NEG };
    write!(out, "{opener} {entity_name} last month.").expect("write to String");
    let n_sentences = 1 + rng.usize_below(3);
    for _ in 0..n_sentences {
        let adj = bank[rng.usize_below(bank.len())];
        let aspect = REVIEW_ASPECTS[rng.usize_below(REVIEW_ASPECTS.len())];
        write!(out, " The {aspect} was {adj}.").expect("write to String");
    }
    let rating = if positive {
        4 + rng.usize_below(2)
    } else {
        1 + rng.usize_below(2)
    };
    write!(out, " Rated {rating} out of 5 stars.").expect("write to String");
    out.push(' ');
    out.push_str(REVIEW_CLOSERS[rng.usize_below(REVIEW_CLOSERS.len())]);
}

/// Generate one boilerplate sentence.
#[must_use]
pub fn boilerplate_sentence(rng: &mut Xoshiro256) -> String {
    boilerplate_pick(rng).to_string()
}

/// Draw one boilerplate sentence without allocating.
#[must_use]
pub fn boilerplate_pick(rng: &mut Xoshiro256) -> &'static str {
    BOILERPLATE[rng.usize_below(BOILERPLATE.len())]
}

/// Generate a block of `n` boilerplate sentences.
#[must_use]
pub fn boilerplate_block(rng: &mut Xoshiro256, n: usize) -> String {
    let mut out = String::new();
    boilerplate_block_into(rng, n, &mut out);
    out
}

/// Append a block of `n` boilerplate sentences to `out` without allocating.
pub fn boilerplate_block_into(rng: &mut Xoshiro256, n: usize, out: &mut String) {
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(boilerplate_pick(rng));
    }
}

/// A 10-digit number formatted like a phone but guaranteed **not** to be a
/// valid NANP number (area code starts with 0 or 1). Exercises extractor
/// precision: these must be rejected.
#[must_use]
pub fn invalid_phone_lookalike(rng: &mut Xoshiro256) -> String {
    let mut out = String::with_capacity(12);
    invalid_phone_lookalike_into(rng, &mut out);
    out
}

/// Append an invalid phone lookalike to `out` without allocating.
pub fn invalid_phone_lookalike_into(rng: &mut Xoshiro256, out: &mut String) {
    use std::fmt::Write;
    let area = rng.u64_below(200); // 000..199: invalid NANP area codes
    let exchange = rng.range_u64(200, 1000);
    let line = rng.u64_below(10_000);
    write!(out, "{area:03}-{exchange:03}-{line:04}").expect("write to String");
}

/// A random order/tracking-style long digit string, the classic source of
/// accidental phone-shaped false matches discussed in §3.5 of the paper.
#[must_use]
pub fn tracking_number(rng: &mut Xoshiro256) -> String {
    let mut out = String::with_capacity(19);
    tracking_number_into(rng, &mut out);
    out
}

/// Append a tracking number to `out` without allocating.
pub fn tracking_number_into(rng: &mut Xoshiro256, out: &mut String) {
    out.push_str("Order #");
    for _ in 0..12 {
        out.push(char::from_digit(rng.u64_below(10) as u32, 10).expect("digit"));
    }
}

/// An anchor tag linking somewhere unrelated (never an entity homepage —
/// the `.example-partner.com` suffix is reserved for noise).
#[must_use]
pub fn noise_anchor(rng: &mut Xoshiro256) -> String {
    let mut out = String::new();
    noise_anchor_into(rng, &mut out);
    out
}

/// Append a noise anchor to `out` without allocating.
pub fn noise_anchor_into(rng: &mut Xoshiro256, out: &mut String) {
    use std::fmt::Write;
    let n = rng.u64_below(100_000);
    write!(
        out,
        "<a href=\"http://partner-{n}.example-partner.com/offers\">See offers</a>"
    )
    .expect("write to String");
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_util::rng::Seed;

    #[test]
    fn review_mentions_entity_and_rating() {
        let mut rng = Xoshiro256::from_seed(Seed(1));
        let text = review_paragraph(&mut rng, "Golden Dragon Bistro");
        assert!(text.contains("Golden Dragon Bistro"));
        assert!(text.contains("out of 5 stars"));
        assert!(text.len() > 40);
    }

    #[test]
    fn reviews_are_mostly_positive() {
        let mut rng = Xoshiro256::from_seed(Seed(2));
        let pos_tokens: Vec<&str> = SENTIMENT_POS.to_vec();
        let mut pos = 0;
        let n = 500;
        for _ in 0..n {
            let text = review_paragraph(&mut rng, "X");
            if pos_tokens.iter().any(|t| text.contains(t)) {
                pos += 1;
            }
        }
        let frac = f64::from(pos) / f64::from(n);
        assert!((0.6..0.8).contains(&frac), "positive fraction {frac}");
    }

    #[test]
    fn boilerplate_block_joins_sentences() {
        let mut rng = Xoshiro256::from_seed(Seed(3));
        let block = boilerplate_block(&mut rng, 3);
        assert!(block.split(". ").count() >= 2 || block.matches('.').count() >= 3);
        assert!(boilerplate_block(&mut rng, 0).is_empty());
    }

    #[test]
    fn review_and_boilerplate_vocabularies_differ() {
        // The registers must be separable: sentiment words never appear in
        // boilerplate sentences.
        for b in BOILERPLATE {
            for s in SENTIMENT_POS.iter().chain(SENTIMENT_NEG) {
                assert!(!b.contains(s), "'{s}' leaks into boilerplate '{b}'");
            }
        }
    }

    #[test]
    fn invalid_lookalikes_have_bad_area_codes() {
        let mut rng = Xoshiro256::from_seed(Seed(4));
        for _ in 0..200 {
            let s = invalid_phone_lookalike(&mut rng);
            let area: u16 = s[..3].parse().expect("3-digit area");
            assert!(area < 200, "area {area} should be invalid");
            assert_eq!(s.len(), 12); // 3+1+3+1+4
        }
    }

    #[test]
    fn tracking_numbers_are_long_digit_runs() {
        let mut rng = Xoshiro256::from_seed(Seed(5));
        let t = tracking_number(&mut rng);
        assert!(t.starts_with("Order #"));
        assert_eq!(t.trim_start_matches("Order #").len(), 12);
    }

    #[test]
    fn noise_anchor_uses_reserved_suffix() {
        let mut rng = Xoshiro256::from_seed(Seed(6));
        let a = noise_anchor(&mut rng);
        assert!(a.contains(".example-partner.com"));
        assert!(a.starts_with("<a href="));
    }
}
