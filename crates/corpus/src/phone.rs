//! US (NANP) phone numbers: the identifying attribute for all eight
//! local-business domains.
//!
//! The canonical form is the 10-digit number; [`PhoneFormat`] enumerates the
//! textual renderings that appear on generated pages, and the extractor in
//! `webstruct-extract` must recover the canonical form from any of them.

use webstruct_util::rng::Xoshiro256;

/// A canonical 10-digit NANP phone number.
///
/// Invariants (enforced at construction): the area code and the exchange
/// code are in `[200, 999]` and neither ends in `11` (N11 codes are service
/// codes, never assigned to businesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhoneNumber(u64);

/// Error when constructing a [`PhoneNumber`] from digits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhoneError {
    /// Not exactly 10 digits.
    WrongLength(usize),
    /// Area code violates NANP rules.
    BadAreaCode(u16),
    /// Exchange code violates NANP rules.
    BadExchange(u16),
}

impl std::fmt::Display for PhoneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhoneError::WrongLength(n) => write!(f, "expected 10 digits, got {n}"),
            PhoneError::BadAreaCode(a) => write!(f, "invalid NANP area code {a:03}"),
            PhoneError::BadExchange(e) => write!(f, "invalid NANP exchange {e:03}"),
        }
    }
}

impl std::error::Error for PhoneError {}

fn valid_nxx(code: u16) -> bool {
    (200..=999).contains(&code) && code % 100 != 11
}

impl PhoneNumber {
    /// Construct from components.
    ///
    /// # Errors
    /// Returns an error when area/exchange codes violate NANP rules or the
    /// line number exceeds 4 digits.
    pub fn new(area: u16, exchange: u16, line: u16) -> Result<Self, PhoneError> {
        if !valid_nxx(area) {
            return Err(PhoneError::BadAreaCode(area));
        }
        if !valid_nxx(exchange) {
            return Err(PhoneError::BadExchange(exchange));
        }
        if line > 9999 {
            return Err(PhoneError::WrongLength(11));
        }
        Ok(PhoneNumber(
            u64::from(area) * 10_000_000 + u64::from(exchange) * 10_000 + u64::from(line),
        ))
    }

    /// Construct from a 10-digit canonical value, validating NANP rules.
    ///
    /// # Errors
    /// Returns an error for out-of-range digit counts or invalid codes.
    pub fn from_digits(digits: u64) -> Result<Self, PhoneError> {
        if digits >= 10_000_000_000 {
            return Err(PhoneError::WrongLength(11));
        }
        let area = (digits / 10_000_000) as u16;
        let exchange = ((digits / 10_000) % 1000) as u16;
        let line = (digits % 10_000) as u16;
        PhoneNumber::new(area, exchange, line)
    }

    /// The canonical 10-digit value.
    #[must_use]
    pub fn digits(self) -> u64 {
        self.0
    }

    /// Area code (NPA).
    #[must_use]
    pub fn area(self) -> u16 {
        (self.0 / 10_000_000) as u16
    }

    /// Exchange code (NXX).
    #[must_use]
    pub fn exchange(self) -> u16 {
        ((self.0 / 10_000) % 1000) as u16
    }

    /// Line number.
    #[must_use]
    pub fn line(self) -> u16 {
        (self.0 % 10_000) as u16
    }

    /// Render in the given textual format.
    #[must_use]
    pub fn format(self, fmt: PhoneFormat) -> String {
        let mut out = String::with_capacity(16);
        self.format_into(fmt, &mut out);
        out
    }

    /// Append the textual rendering to `out` without allocating.
    ///
    /// This is the hot-path variant used by page rendering: the bytes
    /// appended are exactly those [`PhoneNumber::format`] would return.
    pub fn format_into(self, fmt: PhoneFormat, out: &mut String) {
        use std::fmt::Write;
        let (a, e, l) = (self.area(), self.exchange(), self.line());
        match fmt {
            PhoneFormat::Paren => write!(out, "({a:03}) {e:03}-{l:04}"),
            PhoneFormat::Dashes => write!(out, "{a:03}-{e:03}-{l:04}"),
            PhoneFormat::Dots => write!(out, "{a:03}.{e:03}.{l:04}"),
            PhoneFormat::Plain => write!(out, "{a:03}{e:03}{l:04}"),
            PhoneFormat::CountryCode => write!(out, "+1 {a:03} {e:03} {l:04}"),
            PhoneFormat::OneDash => write!(out, "1-{a:03}-{e:03}-{l:04}"),
        }
        .expect("writing to a String cannot fail");
    }

    /// Generate a random valid phone number. Line numbers are drawn from
    /// `0100..9999` to avoid the reserved `555-01xx` fictional block
    /// colliding with real-looking noise in tests.
    #[must_use]
    pub fn random(rng: &mut Xoshiro256) -> Self {
        loop {
            let area = rng.range_u64(200, 1000) as u16;
            let exchange = rng.range_u64(200, 1000) as u16;
            if !valid_nxx(area) || !valid_nxx(exchange) {
                continue;
            }
            let line = rng.range_u64(100, 10_000) as u16;
            if let Ok(p) = PhoneNumber::new(area, exchange, line) {
                return p;
            }
        }
    }
}

impl std::fmt::Display for PhoneNumber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.format(PhoneFormat::Paren))
    }
}

/// Textual renderings of a phone number seen on the synthetic web.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhoneFormat {
    /// `(415) 555-0134`
    Paren,
    /// `415-555-0134`
    Dashes,
    /// `415.555.0134`
    Dots,
    /// `4155550134`
    Plain,
    /// `+1 415 555 0134`
    CountryCode,
    /// `1-415-555-0134`
    OneDash,
}

impl PhoneFormat {
    /// All formats.
    pub const ALL: [PhoneFormat; 6] = [
        PhoneFormat::Paren,
        PhoneFormat::Dashes,
        PhoneFormat::Dots,
        PhoneFormat::Plain,
        PhoneFormat::CountryCode,
        PhoneFormat::OneDash,
    ];

    /// Sample a format with web-realistic frequencies (parenthesised and
    /// dashed forms dominate).
    #[must_use]
    pub fn random(rng: &mut Xoshiro256) -> Self {
        let r = rng.f64();
        if r < 0.40 {
            PhoneFormat::Paren
        } else if r < 0.75 {
            PhoneFormat::Dashes
        } else if r < 0.85 {
            PhoneFormat::Dots
        } else if r < 0.92 {
            PhoneFormat::Plain
        } else if r < 0.97 {
            PhoneFormat::CountryCode
        } else {
            PhoneFormat::OneDash
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_util::rng::Seed;

    #[test]
    fn construction_validates_nanp() {
        assert!(PhoneNumber::new(415, 555, 134).is_ok());
        assert_eq!(
            PhoneNumber::new(123, 555, 0),
            Err(PhoneError::BadAreaCode(123))
        );
        assert_eq!(
            PhoneNumber::new(911, 555, 0),
            Err(PhoneError::BadAreaCode(911))
        );
        assert_eq!(
            PhoneNumber::new(415, 111, 0),
            Err(PhoneError::BadExchange(111))
        );
        assert_eq!(
            PhoneNumber::new(415, 411, 0),
            Err(PhoneError::BadExchange(411))
        );
    }

    #[test]
    fn digits_roundtrip() {
        let p = PhoneNumber::new(415, 555, 134).unwrap();
        assert_eq!(p.digits(), 4_155_550_134);
        assert_eq!(PhoneNumber::from_digits(4_155_550_134), Ok(p));
        assert_eq!(p.area(), 415);
        assert_eq!(p.exchange(), 555);
        assert_eq!(p.line(), 134);
    }

    #[test]
    fn from_digits_rejects_invalid() {
        assert!(PhoneNumber::from_digits(10_000_000_000).is_err());
        assert!(PhoneNumber::from_digits(1_234_567_890).is_err()); // area 123
        assert!(PhoneNumber::from_digits(9_114_567_890).is_err()); // area 911
    }

    #[test]
    fn all_formats_render_distinctly() {
        let p = PhoneNumber::new(415, 555, 134).unwrap();
        assert_eq!(p.format(PhoneFormat::Paren), "(415) 555-0134");
        assert_eq!(p.format(PhoneFormat::Dashes), "415-555-0134");
        assert_eq!(p.format(PhoneFormat::Dots), "415.555.0134");
        assert_eq!(p.format(PhoneFormat::Plain), "4155550134");
        assert_eq!(p.format(PhoneFormat::CountryCode), "+1 415 555 0134");
        assert_eq!(p.format(PhoneFormat::OneDash), "1-415-555-0134");
        assert_eq!(p.to_string(), "(415) 555-0134");
    }

    #[test]
    fn random_phones_are_valid_and_varied() {
        let mut rng = Xoshiro256::from_seed(Seed(1));
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..1000 {
            let p = PhoneNumber::random(&mut rng);
            assert!(PhoneNumber::from_digits(p.digits()).is_ok());
            distinct.insert(p.digits());
        }
        assert!(distinct.len() > 990, "collisions should be rare");
    }

    #[test]
    fn random_format_hits_all_variants() {
        let mut rng = Xoshiro256::from_seed(Seed(2));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            seen.insert(format!("{:?}", PhoneFormat::random(&mut rng)));
        }
        assert_eq!(seen.len(), PhoneFormat::ALL.len());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            PhoneError::BadAreaCode(123).to_string(),
            "invalid NANP area code 123"
        );
        assert!(PhoneError::WrongLength(9).to_string().contains("10 digits"));
    }
}
