//! Out-of-core page shards: a compact length-prefixed binary format that
//! lets full-scale corpora stream through the pipeline with peak memory
//! bounded by the largest shard, not the corpus.
//!
//! ## On-disk layout
//!
//! Every shard file is a 64-byte header followed by a payload of
//! length-prefixed page records (all integers little-endian):
//!
//! ```text
//! header (64 bytes)
//!   magic        [u8; 4]   = b"WSP1"
//!   version      u32       = 1
//!   page_count   u32         records in the payload
//!   first_page   u32         global id of the first record
//!   site_lo      u32         first site index covered (inclusive)
//!   site_hi      u32         last site index covered (exclusive)
//!   payload_len  u64         payload bytes after the header
//!   sha256       [u8; 32]    SHA-256 of the payload bytes
//! record
//!   page_id      u32
//!   site         u32
//!   kind         u8        0 = listing, 1 = review
//!   url_len      u16
//!   text_len     u32
//!   url          [u8; url_len]
//!   text         [u8; text_len]
//! ```
//!
//! The header checksum makes corruption loud: [`PageShardReader::open`]
//! streams the whole payload once through SHA-256 (in small fixed-size
//! chunks — the payload is never resident) and refuses to yield a single
//! record from a shard whose bytes do not match, then seeks back and
//! decodes records on a second buffered pass. Truncation is caught the
//! same way (short payload reads are an error, not EOF).
//!
//! ## Streaming contract
//!
//! Page rendering is a pure function of `(seed, page id)` (see
//! [`PageStream::for_site_range`]), so a shard written from a site range
//! stores exactly the bytes the in-memory stream would have produced for
//! those pages — and [`ShardedWeb`] can transparently *render* shards
//! (never touching disk) or *read* them back from a [`ShardStore`] with
//! byte-identical results either way.

use crate::entity::EntityCatalog;
use crate::manifest::{ExtEntry, ExtSection, ManifestEntry, StoreManifest};
use crate::page::{Page, PageConfig, PageKind, PageScratch, PageStream};
use crate::web::Web;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use webstruct_util::ids::{PageId, SiteId};
use webstruct_util::iofault::FaultSession;
use webstruct_util::rng::Seed;
use webstruct_util::sha::Sha256;

/// Shard file magic: "WebStruct Pages v1".
pub const SHARD_MAGIC: [u8; 4] = *b"WSP1";
/// Current shard format version.
pub const SHARD_VERSION: u32 = 1;
/// Header size in bytes.
pub const SHARD_HEADER_LEN: usize = 64;
/// Default shard payload target: 32 MiB keeps peak reader RSS small while
/// amortising per-shard overhead over tens of thousands of pages.
pub const DEFAULT_SHARD_BYTES: u64 = 32 * 1024 * 1024;

/// Everything that can go wrong writing or reading a shard.
#[derive(Debug)]
pub enum ShardError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`SHARD_MAGIC`].
    BadMagic([u8; 4]),
    /// The file's version is not [`SHARD_VERSION`].
    BadVersion(u32),
    /// The file ended before the header or payload was complete.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The payload's SHA-256 does not match the header stamp.
    ChecksumMismatch,
    /// A record inside the payload is malformed (lengths overrun the
    /// payload, invalid page kind, non-UTF-8 text).
    CorruptRecord(&'static str),
    /// The store directory has no `MANIFEST.wsm` — either it never
    /// finished a write, or it predates the durable format.
    ManifestMissing,
    /// The manifest exists but is malformed or fails its own checksum.
    ManifestCorrupt(&'static str),
    /// A shard the manifest lists is not on disk.
    MissingShard {
        /// Index of the missing shard.
        index: usize,
    },
    /// The manifest's shard ranges do not tile the site axis: sites
    /// `expected_site..found_site` (or the reverse) belong to no shard.
    Gap {
        /// First site the next shard was expected to start at.
        expected_site: u32,
        /// Site the next shard actually starts at (or where coverage
        /// ended, for a store that stops early).
        found_site: u32,
    },
    /// A shard's header disagrees with its manifest entry.
    HeaderMismatch {
        /// Index of the offending shard.
        index: usize,
        /// First field that disagreed (`sha256`, `page_count`, …).
        field: &'static str,
    },
    /// The store was written under a different `(web, config, seed,
    /// shard target)` than the one offered for resume.
    ConfigMismatch,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard i/o error: {e}"),
            ShardError::BadMagic(m) => write!(f, "bad shard magic {m:?} (want WSP1)"),
            ShardError::BadVersion(v) => write!(f, "unsupported shard version {v}"),
            ShardError::Truncated { expected, got } => {
                write!(f, "truncated shard: expected {expected} bytes, got {got}")
            }
            ShardError::ChecksumMismatch => write!(f, "shard payload checksum mismatch"),
            ShardError::CorruptRecord(why) => write!(f, "corrupt shard record: {why}"),
            ShardError::ManifestMissing => write!(f, "store has no MANIFEST.wsm"),
            ShardError::ManifestCorrupt(why) => write!(f, "corrupt manifest: {why}"),
            ShardError::MissingShard { index } => {
                write!(f, "shard {index} listed in manifest but missing on disk")
            }
            ShardError::Gap {
                expected_site,
                found_site,
            } => write!(
                f,
                "store does not tile the site axis: expected coverage at site \
                 {expected_site}, found {found_site}"
            ),
            ShardError::HeaderMismatch { index, field } => {
                write!(f, "shard {index} header disagrees with manifest on {field}")
            }
            ShardError::ConfigMismatch => write!(
                f,
                "store fingerprint does not match this (web, config, seed, shard target)"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// Parsed shard header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHeader {
    /// Records in the payload.
    pub page_count: u32,
    /// Global id of the first record.
    pub first_page: u32,
    /// First site index covered (inclusive).
    pub site_lo: u32,
    /// Last site index covered (exclusive).
    pub site_hi: u32,
    /// Payload bytes after the header.
    pub payload_len: u64,
    /// SHA-256 of the payload.
    pub sha256: [u8; 32],
}

/// One shard's slice of the site axis, with the prefix-sum page numbering
/// and byte estimate the scheduler balances on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Sites `[start, end)` rendered into this shard.
    pub sites: std::ops::Range<usize>,
    /// Global id of the shard's first page (prefix sum of earlier sites).
    pub first_page: u32,
    /// Pages the shard contributes.
    pub page_count: u32,
    /// Estimated rendered bytes ([`PageStream::estimated_site_bytes`]).
    pub est_bytes: u64,
}

/// Cut the web's sites into contiguous shards of roughly `target_bytes`
/// estimated rendered size each. Every site lands in exactly one shard; a
/// single site larger than the target gets a shard to itself (shards never
/// split a site, so each shard is independently renderable).
#[must_use]
pub fn plan_shards(web: &Web, config: &PageConfig, target_bytes: u64) -> Vec<ShardSpec> {
    let target = target_bytes.max(1);
    let mut specs = Vec::new();
    let mut start = 0usize;
    let mut first_page = 0u32;
    let mut pages = 0u32;
    let mut bytes = 0u64;
    for i in 0..web.n_sites() {
        bytes += PageStream::estimated_site_bytes(web, config, i);
        pages += PageStream::site_page_count(web, config, i);
        if bytes >= target {
            specs.push(ShardSpec {
                sites: start..i + 1,
                first_page,
                page_count: pages,
                est_bytes: bytes,
            });
            start = i + 1;
            first_page += pages;
            pages = 0;
            bytes = 0;
        }
    }
    if start < web.n_sites() {
        specs.push(ShardSpec {
            sites: start..web.n_sites(),
            first_page,
            page_count: pages,
            est_bytes: bytes,
        });
    }
    specs
}

/// Removes a temp file on drop unless [`disarm`](TempFileGuard::disarm)ed
/// — the leak-proofing for every `*.tmp` the store writes: a shard (or
/// manifest) write that errors out part-way never leaves its temp file
/// behind, and a [`PageShardWriter`] carrying one cleans up even when it
/// is simply dropped mid-shard.
#[derive(Debug)]
pub struct TempFileGuard {
    path: Option<PathBuf>,
}

impl TempFileGuard {
    /// Guard `path` for removal on drop.
    #[must_use]
    pub fn new(path: PathBuf) -> Self {
        TempFileGuard { path: Some(path) }
    }

    /// The write completed (the file was renamed away): stop guarding.
    pub fn disarm(mut self) {
        self.path = None;
    }
}

impl Drop for TempFileGuard {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            // Best-effort: the file may already have been renamed away.
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Streaming shard writer over any seekable [`Write`] sink (normally a
/// `BufWriter<File>`). The SHA-256 stamp and payload length live in the
/// *header*, which precedes the payload on disk — so the writer stamps a
/// placeholder header first, streams each record straight to the sink
/// while hashing it incrementally, and seeks back to patch the real
/// header in [`finish`](PageShardWriter::finish). Memory is therefore
/// O(one record) no matter how large the shard grows — a single
/// Zipf-head site can render tens of megabytes, and none of it is ever
/// resident here.
#[derive(Debug)]
pub struct PageShardWriter<W: Write + Seek> {
    sink: W,
    sha: Sha256,
    record: Vec<u8>,
    payload_len: u64,
    page_count: u32,
    first_page: Option<u32>,
    site_lo: u32,
    site_hi: u32,
    header_written: bool,
    /// Temp-file guard: dropped (removing the file) when the writer is
    /// abandoned before [`finish`](PageShardWriter::finish) completes.
    guard: Option<TempFileGuard>,
}

fn encode_header(header: &ShardHeader) -> [u8; SHARD_HEADER_LEN] {
    let mut head = [0u8; SHARD_HEADER_LEN];
    head[0..4].copy_from_slice(&SHARD_MAGIC);
    head[4..8].copy_from_slice(&SHARD_VERSION.to_le_bytes());
    head[8..12].copy_from_slice(&header.page_count.to_le_bytes());
    head[12..16].copy_from_slice(&header.first_page.to_le_bytes());
    head[16..20].copy_from_slice(&header.site_lo.to_le_bytes());
    head[20..24].copy_from_slice(&header.site_hi.to_le_bytes());
    head[24..32].copy_from_slice(&header.payload_len.to_le_bytes());
    head[32..64].copy_from_slice(&header.sha256);
    head
}

impl<W: Write + Seek> PageShardWriter<W> {
    /// Start a shard aimed at `sink` (positioned where the header goes).
    #[must_use]
    pub fn new(sink: W) -> Self {
        PageShardWriter {
            sink,
            sha: Sha256::new(),
            record: Vec::new(),
            payload_len: 0,
            page_count: 0,
            first_page: None,
            site_lo: u32::MAX,
            site_hi: 0,
            header_written: false,
            guard: None,
        }
    }

    /// Attach a [`TempFileGuard`]: if this writer is dropped (or errors)
    /// before a successful finish, the guarded temp file is removed.
    /// [`finish`](PageShardWriter::finish) disarms it;
    /// [`finish_parts`](PageShardWriter::finish_parts) hands it back so
    /// the caller can disarm after the rename commit.
    #[must_use]
    pub fn with_cleanup(mut self, guard: TempFileGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Append one page record, streaming it straight to the sink.
    ///
    /// # Errors
    /// Propagates sink I/O errors.
    ///
    /// # Panics
    /// Panics when the URL exceeds `u16::MAX` bytes or the text exceeds
    /// `u32::MAX` bytes — neither occurs for generated pages.
    pub fn push(
        &mut self,
        id: PageId,
        site: SiteId,
        kind: PageKind,
        url: &str,
        text: &str,
    ) -> Result<(), ShardError> {
        if !self.header_written {
            self.sink.write_all(&[0u8; SHARD_HEADER_LEN])?;
            self.header_written = true;
        }
        let url_len = u16::try_from(url.len()).expect("url fits u16");
        let text_len = u32::try_from(text.len()).expect("text fits u32");
        self.record.clear();
        self.record.extend_from_slice(&id.raw().to_le_bytes());
        self.record.extend_from_slice(&site.raw().to_le_bytes());
        self.record.push(match kind {
            PageKind::Listing => 0,
            PageKind::Review => 1,
        });
        self.record.extend_from_slice(&url_len.to_le_bytes());
        self.record.extend_from_slice(&text_len.to_le_bytes());
        self.record.extend_from_slice(url.as_bytes());
        self.record.extend_from_slice(text.as_bytes());
        self.sha.update(&self.record);
        self.sink.write_all(&self.record)?;
        self.payload_len += self.record.len() as u64;
        self.page_count += 1;
        self.first_page.get_or_insert(id.raw());
        self.site_lo = self.site_lo.min(site.raw());
        self.site_hi = self.site_hi.max(site.raw() + 1);
        Ok(())
    }

    /// Seek back and stamp the real header over the placeholder, then
    /// flush. Returns the header as written. Any attached temp-file
    /// guard is disarmed on success (and fires on failure).
    ///
    /// # Errors
    /// Propagates sink I/O errors.
    pub fn finish(self) -> Result<ShardHeader, ShardError> {
        let (header, _sink, guard) = self.finish_parts()?;
        if let Some(g) = guard {
            g.disarm();
        }
        Ok(header)
    }

    /// [`finish`](PageShardWriter::finish), but hand back the sink (so
    /// the caller can fsync the underlying file) and the still-armed
    /// temp-file guard (so it can be disarmed only after the atomic
    /// rename commits). This is the crash-safe write path's entry point.
    ///
    /// # Errors
    /// Propagates sink I/O errors; the guard fires on the error path.
    pub fn finish_parts(mut self) -> Result<(ShardHeader, W, Option<TempFileGuard>), ShardError> {
        if !self.header_written {
            self.sink.write_all(&[0u8; SHARD_HEADER_LEN])?;
        }
        let header = ShardHeader {
            page_count: self.page_count,
            first_page: self.first_page.unwrap_or(0),
            site_lo: if self.site_lo == u32::MAX { 0 } else { self.site_lo },
            site_hi: self.site_hi,
            payload_len: self.payload_len,
            sha256: self.sha.finalize(),
        };
        self.sink.seek(SeekFrom::Current(-(self.payload_len as i64) - SHARD_HEADER_LEN as i64))?;
        self.sink.write_all(&encode_header(&header))?;
        self.sink.flush()?;
        Ok((header, self.sink, self.guard))
    }
}

/// Chunk size for the reader's streaming checksum pass. Large enough to
/// amortise syscalls, small enough that validation memory is invisible
/// next to the accumulators it feeds.
const HASH_CHUNK: usize = 64 * 1024;

/// Read and decode a shard header from the reader's current position:
/// magic, version and truncation checks, no payload validation.
///
/// # Errors
/// [`ShardError::Truncated`] / [`ShardError::BadMagic`] /
/// [`ShardError::BadVersion`].
pub fn read_header<R: Read>(reader: &mut R) -> Result<ShardHeader, ShardError> {
    let mut head = [0u8; SHARD_HEADER_LEN];
    let mut filled = 0usize;
    while filled < SHARD_HEADER_LEN {
        let n = reader.read(&mut head[filled..])?;
        if n == 0 {
            return Err(ShardError::Truncated {
                expected: SHARD_HEADER_LEN as u64,
                got: filled as u64,
            });
        }
        filled += n;
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&head[0..4]);
    if magic != SHARD_MAGIC {
        return Err(ShardError::BadMagic(magic));
    }
    let u32le = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("4 bytes"));
    let version = u32le(&head[4..8]);
    if version != SHARD_VERSION {
        return Err(ShardError::BadVersion(version));
    }
    Ok(ShardHeader {
        page_count: u32le(&head[8..12]),
        first_page: u32le(&head[12..16]),
        site_lo: u32le(&head[16..20]),
        site_hi: u32le(&head[20..24]),
        payload_len: u64::from_le_bytes(head[24..32].try_into().expect("8 bytes")),
        sha256: head[32..64].try_into().expect("32 bytes"),
    })
}

/// Read just the header of the shard file at `path` (64 bytes of I/O —
/// the cheap validation [`ShardStore::open`] performs per shard).
///
/// # Errors
/// See [`read_header`]; plus file-open errors.
pub fn read_header_path(path: &Path) -> Result<ShardHeader, ShardError> {
    read_header(&mut File::open(path)?)
}

/// Shard reader: validates header + checksum up front with a streaming
/// hash pass (the payload is never resident), then seeks back and yields
/// records into reused buffers (or owned [`Page`]s via the [`Iterator`]
/// impl). Peak memory is O(one record), not O(shard) — the property that
/// keeps full-scale extraction flat even when a Zipf-head site makes one
/// shard tens of megabytes.
#[derive(Debug)]
pub struct PageShardReader<R: Read + Seek> {
    reader: R,
    header: ShardHeader,
    remaining: u64,
    body: Vec<u8>,
}

impl<R: Read + Seek> PageShardReader<R> {
    /// Read and validate a whole shard from `reader` (normally a
    /// `BufReader<File>`): magic, version, payload length, checksum. The
    /// payload is hashed in [`HASH_CHUNK`]-sized chunks and the reader
    /// then seeks back to the first record, so validation never holds
    /// more than one chunk in memory.
    ///
    /// # Errors
    /// Any [`ShardError`] variant; a shard that opens cleanly will not
    /// fail checksum mid-iteration (records can still be rejected as
    /// corrupt if lengths overrun — that indicates a writer bug, not
    /// bitrot, since the checksum already passed).
    pub fn open(mut reader: R) -> Result<Self, ShardError> {
        let start = reader.stream_position()?;
        let header = read_header(&mut reader)?;
        let mut sha = Sha256::new();
        let mut chunk = vec![0u8; HASH_CHUNK.min(header.payload_len as usize).max(1)];
        let mut hashed = 0u64;
        while hashed < header.payload_len {
            let want = chunk.len().min((header.payload_len - hashed) as usize);
            let n = reader.read(&mut chunk[..want])?;
            if n == 0 {
                return Err(ShardError::Truncated {
                    expected: header.payload_len,
                    got: hashed,
                });
            }
            sha.update(&chunk[..n]);
            hashed += n as u64;
        }
        if sha.finalize() != header.sha256 {
            return Err(ShardError::ChecksumMismatch);
        }
        reader.seek(SeekFrom::Start(start + SHARD_HEADER_LEN as u64))?;
        Ok(PageShardReader {
            reader,
            remaining: header.payload_len,
            header,
            body: Vec::new(),
        })
    }

    /// The validated header.
    #[must_use]
    pub fn header(&self) -> &ShardHeader {
        &self.header
    }

    /// Decode the next record into `out`'s reused buffers. Returns
    /// `Ok(false)` at end of shard. Steady-state calls allocate nothing
    /// once the buffers reach the largest record.
    ///
    /// # Errors
    /// [`ShardError::CorruptRecord`] when record framing is inconsistent.
    pub fn read_into(&mut self, out: &mut ShardRecord) -> Result<bool, ShardError> {
        if self.remaining == 0 {
            return Ok(false);
        }
        if self.remaining < 15 {
            return Err(ShardError::CorruptRecord("record prefix overruns payload"));
        }
        let mut prefix = [0u8; 15];
        self.reader.read_exact(&mut prefix)?;
        let u32le = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("4 bytes"));
        let id = u32le(&prefix[0..4]);
        let site = u32le(&prefix[4..8]);
        let kind = match prefix[8] {
            0 => PageKind::Listing,
            1 => PageKind::Review,
            _ => return Err(ShardError::CorruptRecord("unknown page kind")),
        };
        let url_len = u16::from_le_bytes(prefix[9..11].try_into().expect("2 bytes")) as usize;
        let text_len = u32le(&prefix[11..15]) as usize;
        if self.remaining - 15 < (url_len + text_len) as u64 {
            return Err(ShardError::CorruptRecord("record body overruns payload"));
        }
        self.body.resize(url_len + text_len, 0);
        self.reader.read_exact(&mut self.body)?;
        let url = std::str::from_utf8(&self.body[..url_len])
            .map_err(|_| ShardError::CorruptRecord("url is not UTF-8"))?;
        let text = std::str::from_utf8(&self.body[url_len..])
            .map_err(|_| ShardError::CorruptRecord("text is not UTF-8"))?;
        out.id = PageId::new(id);
        out.site = SiteId::new(site);
        out.kind = kind;
        out.url.clear();
        out.url.push_str(url);
        out.text.clear();
        out.text.push_str(text);
        self.remaining -= 15 + (url_len + text_len) as u64;
        Ok(true)
    }
}

impl PageShardReader<BufReader<File>> {
    /// Open the shard file at `path` through a `BufReader`.
    ///
    /// # Errors
    /// See [`PageShardReader::open`].
    pub fn open_path(path: &Path) -> Result<Self, ShardError> {
        Self::open(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> Iterator for PageShardReader<R> {
    type Item = Result<Page, ShardError>;

    /// Owned-`Page` compatibility path; hot loops should reuse a
    /// [`ShardRecord`] via [`PageShardReader::read_into`].
    fn next(&mut self) -> Option<Self::Item> {
        let mut rec = ShardRecord::default();
        match self.read_into(&mut rec) {
            Ok(true) => Some(Ok(Page {
                id: rec.id,
                site: rec.site,
                url: rec.url,
                kind: rec.kind,
                text: rec.text,
            })),
            Ok(false) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

/// Reused decode target for [`PageShardReader::read_into`].
#[derive(Debug, Clone)]
pub struct ShardRecord {
    /// Global page id.
    pub id: PageId,
    /// Hosting site.
    pub site: SiteId,
    /// Page class.
    pub kind: PageKind,
    /// Page URL, in a reused buffer.
    pub url: String,
    /// Page text, in a reused buffer.
    pub text: String,
}

impl Default for ShardRecord {
    fn default() -> Self {
        ShardRecord {
            id: PageId::new(0),
            site: SiteId::new(0),
            kind: PageKind::Listing,
            url: String::new(),
            text: String::new(),
        }
    }
}

/// What recovery does with shard files already on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecoverMode {
    /// Render everything from scratch (existing files are replaced; the
    /// write is still crash-safe).
    Cold,
    /// Reuse shards the manifest vouches for (header check only — a
    /// shard at its final name was fsynced before the rename, so the
    /// manifest digest plus a 64-byte header read is proof enough).
    /// Shards without a trusted manifest entry are never reused.
    Resume,
    /// Reuse only manifest-vouched shards whose payload also re-hashes
    /// clean — the quarantine-everything-sus mode behind
    /// `webstruct repair`.
    Repair,
}

/// What a recovery pass did, shard by shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shards the plan called for.
    pub shards_total: usize,
    /// Shards reused from disk (verified, not re-rendered).
    pub shards_reused: usize,
    /// Shards rendered (from scratch or replacing a bad file).
    pub shards_rendered: usize,
    /// Shards whose bytes were intact and vouched for, but whose site
    /// revisions moved since the manifest committed — re-rendered in
    /// place, *not* quarantined (staleness is a planned mutation, not
    /// evidence of damage).
    pub shards_stale: usize,
    /// Corrupt or stray shard files moved to `.quarantine/`.
    pub shards_quarantined: usize,
    /// Extraction-cache entries dropped: stale (their shard re-rendered),
    /// unlisted, or — under repair — failing verification (those are
    /// quarantined rather than deleted).
    pub ext_dropped: usize,
    /// Stray `*.tmp` files from interrupted writes that were removed.
    pub tmp_removed: usize,
    /// Whether a matching manifest was found and trusted.
    pub manifest_reused: bool,
}

impl RecoveryReport {
    /// Fraction of planned shards that were reused instead of rendered.
    #[must_use]
    pub fn reuse_fraction(&self) -> f64 {
        if self.shards_total == 0 {
            return 0.0;
        }
        self.shards_reused as f64 / self.shards_total as f64
    }
}

/// One shard's verdict from a [`ShardStore::scrub`] pass.
#[derive(Debug)]
pub enum ScrubStatus {
    /// Payload digest, record framing and manifest entry all agree.
    Verified,
    /// The manifest lists the shard but the file is gone.
    Missing,
    /// The shard failed validation (the error says how).
    Corrupt(ShardError),
}

/// A scrub finding for one manifest entry.
#[derive(Debug)]
pub struct ScrubFinding {
    /// Shard index (manifest order).
    pub index: usize,
    /// Shard file name.
    pub file: String,
    /// Verdict.
    pub status: ScrubStatus,
}

/// Full-store integrity report: every byte of every shard re-hashed and
/// re-framed against the manifest.
#[derive(Debug)]
pub struct ScrubReport {
    /// Per-shard verdicts, in manifest order.
    pub findings: Vec<ScrubFinding>,
    /// Per-extraction-cache-entry verdicts for every entry the
    /// manifest's `ext` section lists: existence, header key binding
    /// (shard digest + extractor fingerprint) and a full payload
    /// re-hash. Empty when the manifest carries no `ext` section.
    pub ext_findings: Vec<ScrubFinding>,
    /// `shard-*.wsp` / `ext-*.wse` / `*.tmp` files in the directory the
    /// manifest does not list (a torn write the old globbing `open`
    /// would have let join the store).
    pub strays: Vec<String>,
}

impl ScrubReport {
    /// Shards that verified clean.
    #[must_use]
    pub fn verified(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| matches!(f.status, ScrubStatus::Verified))
            .count()
    }

    /// Shards missing from disk.
    #[must_use]
    pub fn missing(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| matches!(f.status, ScrubStatus::Missing))
            .count()
    }

    /// Shards that failed validation.
    #[must_use]
    pub fn corrupt(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| matches!(f.status, ScrubStatus::Corrupt(_)))
            .count()
    }

    /// Extraction-cache entries that verified clean.
    #[must_use]
    pub fn ext_verified(&self) -> usize {
        self.ext_findings
            .iter()
            .filter(|f| matches!(f.status, ScrubStatus::Verified))
            .count()
    }

    /// Extraction-cache entries that are missing or failed verification
    /// (wrong key, digest mismatch, truncation).
    #[must_use]
    pub fn ext_bad(&self) -> usize {
        self.ext_findings.len() - self.ext_verified()
    }

    /// Whether every shard and cache entry verified and nothing stray
    /// was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.corrupt() == 0 && self.missing() == 0 && self.ext_bad() == 0 && self.strays.is_empty()
    }

    /// Human-readable per-shard table (the `webstruct scrub` output).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let verdict = match &f.status {
                ScrubStatus::Verified => "ok".to_string(),
                ScrubStatus::Missing => "MISSING".to_string(),
                ScrubStatus::Corrupt(e) => format!("CORRUPT: {e}"),
            };
            out.push_str(&format!("  shard {:>3}  {:<20} {}\n", f.index, f.file, verdict));
        }
        for f in &self.ext_findings {
            let verdict = match &f.status {
                ScrubStatus::Verified => "ok".to_string(),
                ScrubStatus::Missing => "MISSING".to_string(),
                ScrubStatus::Corrupt(e) => format!("CORRUPT: {e}"),
            };
            out.push_str(&format!("  cache {:>3}  {:<20} {}\n", f.index, f.file, verdict));
        }
        for s in &self.strays {
            out.push_str(&format!("  stray      {s}  (not in manifest)\n"));
        }
        out.push_str(&format!(
            "  {} verified, {} corrupt, {} missing, {} stray",
            self.verified(),
            self.corrupt(),
            self.missing(),
            self.strays.len()
        ));
        if self.ext_findings.is_empty() {
            out.push('\n');
        } else {
            out.push_str(&format!(
                "; cache: {} verified, {} bad\n",
                self.ext_verified(),
                self.ext_bad()
            ));
        }
        out
    }
}

/// A directory of shard files (`shard-00000.wsp`, `shard-00001.wsp`, …)
/// covering a whole web in site order, described and vouched for by a
/// [`StoreManifest`] (`MANIFEST.wsm`).
///
/// ## Durability protocol
///
/// Every file — shard or manifest — is written the same way: stream to
/// `name.tmp`, `fsync`, atomically rename to `name`, `fsync` the
/// directory. The manifest is written **after** every shard has
/// committed, so its existence certifies a complete store; a crash at
/// any earlier point leaves at worst a stale manifest, complete shards
/// at final names, and a `*.tmp` that recovery deletes. [`open`]
/// (ShardStore::open) trusts only the manifest: coverage must tile the
/// site axis and every shard header must match its manifest entry.
#[derive(Debug, Clone)]
pub struct ShardStore {
    dir: PathBuf,
    shards: Vec<PathBuf>,
    manifest: StoreManifest,
}

impl ShardStore {
    fn shard_path(dir: &Path, i: usize) -> PathBuf {
        dir.join(Self::shard_name(i))
    }

    fn shard_name(i: usize) -> String {
        format!("shard-{i:05}.wsp")
    }

    /// Fingerprint of everything that determines the store's bytes: the
    /// web's shape, the page config, the render seed and the shard
    /// target. Recorded in the manifest; resume refuses to reuse shards
    /// across a fingerprint change (a different corpus would silently
    /// produce a frankenstore).
    #[must_use]
    pub fn fingerprint(
        web: &Web,
        config: &PageConfig,
        seed: Seed,
        target_bytes: u64,
    ) -> [u8; 32] {
        let mut sha = Sha256::new();
        sha.update(b"webstruct-store-fingerprint-v1\n");
        sha.update(&seed.0.to_le_bytes());
        sha.update(&target_bytes.to_le_bytes());
        sha.update(&(web.n_sites() as u64).to_le_bytes());
        sha.update(&(web.n_mentions() as u64).to_le_bytes());
        // The page config has no stable binary encoding; its Debug
        // rendering is deterministic and covers every field.
        sha.update(format!("{config:?}").as_bytes());
        sha.finalize()
    }

    /// Render every page of `web` into shard files under `dir` (created
    /// if missing), cutting shards per [`plan_shards`] with
    /// `target_bytes` estimated payload each, then commit `MANIFEST.wsm`.
    /// Crash-safe: see the type-level durability protocol. Peak memory
    /// is one page of scratch — records stream straight to disk.
    ///
    /// # Errors
    /// Propagates file-system errors; partial temp files are cleaned up
    /// on the error path.
    pub fn write(
        dir: &Path,
        web: &Web,
        catalog: &EntityCatalog,
        config: &PageConfig,
        seed: Seed,
        target_bytes: u64,
    ) -> Result<ShardStore, ShardError> {
        Self::write_with_session(dir, web, catalog, config, seed, target_bytes, &FaultSession::clean())
            .map(|(store, _)| store)
    }

    /// [`write`](ShardStore::write) with every file-system operation
    /// charged against an I/O fault session — the torture harness's
    /// entry point for "crash at operation k" sweeps.
    ///
    /// # Errors
    /// Injected faults surface as [`ShardError::Io`].
    pub fn write_with_session(
        dir: &Path,
        web: &Web,
        catalog: &EntityCatalog,
        config: &PageConfig,
        seed: Seed,
        target_bytes: u64,
        session: &FaultSession,
    ) -> Result<(ShardStore, RecoveryReport), ShardError> {
        Self::recover_with_session(
            dir, web, catalog, config, seed, target_bytes, session, RecoverMode::Cold,
        )
    }

    /// Resume an interrupted [`write`](ShardStore::write): shards the
    /// manifest vouches for are kept as-is (rendering is seed-pure, so
    /// the reused bytes are identical to what a cold run would produce)
    /// and only the incomplete tail is re-rendered. The manifest
    /// recommits after every rendered shard, so a kill strands at most
    /// one completed-but-unlisted shard; unlisted survivors are
    /// quarantined and re-rendered rather than trusted (a header check
    /// against the plan cannot distinguish seeds). The resulting store —
    /// manifest included — is byte-identical to a cold write at the same
    /// seed.
    ///
    /// # Errors
    /// Propagates file-system errors.
    pub fn write_resumable(
        dir: &Path,
        web: &Web,
        catalog: &EntityCatalog,
        config: &PageConfig,
        seed: Seed,
        target_bytes: u64,
    ) -> Result<(ShardStore, RecoveryReport), ShardError> {
        Self::recover_with_session(
            dir,
            web,
            catalog,
            config,
            seed,
            target_bytes,
            &FaultSession::clean(),
            RecoverMode::Resume,
        )
    }

    /// [`write_resumable`](ShardStore::write_resumable) under an I/O
    /// fault session (so the torture sweep can crash *recovery* too).
    ///
    /// # Errors
    /// Injected faults surface as [`ShardError::Io`].
    pub fn write_resumable_with_session(
        dir: &Path,
        web: &Web,
        catalog: &EntityCatalog,
        config: &PageConfig,
        seed: Seed,
        target_bytes: u64,
        session: &FaultSession,
    ) -> Result<(ShardStore, RecoveryReport), ShardError> {
        Self::recover_with_session(
            dir, web, catalog, config, seed, target_bytes, session, RecoverMode::Resume,
        )
    }

    /// Repair a damaged store: every manifest-vouched shard's payload is
    /// fully re-hashed; corrupt, mismatched, unlisted or stray files are
    /// moved to `.quarantine/` (never deleted — they are evidence) and
    /// re-rendered from the seed. Converges to the same bytes as a cold
    /// write.
    ///
    /// # Errors
    /// Propagates file-system errors.
    pub fn repair(
        dir: &Path,
        web: &Web,
        catalog: &EntityCatalog,
        config: &PageConfig,
        seed: Seed,
        target_bytes: u64,
    ) -> Result<(ShardStore, RecoveryReport), ShardError> {
        Self::recover_with_session(
            dir,
            web,
            catalog,
            config,
            seed,
            target_bytes,
            &FaultSession::clean(),
            RecoverMode::Repair,
        )
    }

    /// Write one shard crash-safely: tmp → fsync → rename → dir fsync.
    #[allow(clippy::too_many_arguments)]
    fn write_one_shard(
        dir: &Path,
        i: usize,
        spec: &ShardSpec,
        web: &Web,
        catalog: &EntityCatalog,
        config: &PageConfig,
        seed: Seed,
        session: &FaultSession,
        scratch: &mut PageScratch,
        url: &mut String,
    ) -> Result<ShardHeader, ShardError> {
        let final_path = Self::shard_path(dir, i);
        let tmp = dir.join(format!("{}.tmp", Self::shard_name(i)));
        let file = session.create(&tmp)?;
        let mut writer = PageShardWriter::new(BufWriter::new(file))
            .with_cleanup(TempFileGuard::new(tmp.clone()));
        let mut stream = PageStream::for_site_range(
            web,
            catalog,
            config.clone(),
            seed,
            spec.sites.clone(),
            spec.first_page,
        );
        while stream.render_into(scratch) {
            url.clear();
            scratch.url_into(url);
            writer.push(scratch.id(), scratch.site(), scratch.kind(), url, scratch.text())?;
        }
        let (header, sink, guard) = writer.finish_parts()?;
        let file = sink
            .into_inner()
            .map_err(|e| ShardError::Io(e.into_error()))?;
        file.sync_all()?;
        drop(file);
        session.rename(&tmp, &final_path)?;
        if let Some(g) = guard {
            g.disarm();
        }
        session.sync_dir(dir)?;
        Ok(header)
    }

    /// Move `path` into `dir/.quarantine/`, never clobbering evidence
    /// already there.
    fn quarantine_file(dir: &Path, path: &Path) -> Result<(), ShardError> {
        let qdir = dir.join(".quarantine");
        std::fs::create_dir_all(&qdir)?;
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("unnamed")
            .to_string();
        let mut dest = qdir.join(&name);
        let mut k = 1u32;
        while dest.exists() {
            dest = qdir.join(format!("{name}.{k}"));
            k += 1;
        }
        std::fs::rename(path, &dest)?;
        Ok(())
    }

    /// Retire a dead extraction-cache file: repair quarantines it (the
    /// payload may be evidence of how the cache went bad), every other
    /// mode deletes it — a cache entry is reproducible by construction,
    /// so unlike shards it is not precious.
    fn drop_ext_file(dir: &Path, path: &Path, mode: RecoverMode) -> Result<(), ShardError> {
        if mode == RecoverMode::Repair {
            Self::quarantine_file(dir, path)
        } else {
            std::fs::remove_file(path)?;
            Ok(())
        }
    }

    /// Manifest `ext` section for the carried-forward entries, or `None`
    /// when there was no prior section or nothing survived (so stores
    /// that never cached extractions keep rendering PR 7 manifest bytes).
    fn ext_section(old: Option<&ExtSection>, entries: &[Option<ExtEntry>]) -> Option<ExtSection> {
        let old = old?;
        if entries.iter().all(Option::is_none) {
            return None;
        }
        Some(ExtSection {
            fingerprint: old.fingerprint,
            entries: entries.to_vec(),
        })
    }

    /// Whether the existing shard at `path` can be reused for the
    /// manifest entry that vouches for it. Reuse always requires a
    /// manifest entry: the entry's digest is the only thing that
    /// distinguishes same-shaped shards rendered under a different seed
    /// (page counts and site ranges derive from the web alone, so a
    /// header-vs-plan check cannot tell them apart).
    fn reusable(path: &Path, entry: &ManifestEntry, mode: RecoverMode) -> bool {
        let Ok(header) = read_header_path(path) else {
            return false;
        };
        if entry.header_mismatch(&header).is_some() {
            return false;
        }
        // Manifest + matching header: in Resume mode that is proof — the
        // tmp → fsync → rename protocol guarantees a complete fsynced
        // file behind any final name, and the manifest commits strictly
        // after the shards it lists. Repair trusts nothing it has not
        // re-hashed end to end.
        mode == RecoverMode::Resume || PageShardReader::open_path(path).is_ok()
    }

    /// The engine behind write / resume / repair.
    #[allow(clippy::too_many_arguments)]
    fn recover_with_session(
        dir: &Path,
        web: &Web,
        catalog: &EntityCatalog,
        config: &PageConfig,
        seed: Seed,
        target_bytes: u64,
        session: &FaultSession,
        mode: RecoverMode,
    ) -> Result<(ShardStore, RecoveryReport), ShardError> {
        let _span = webstruct_util::span!("store.recover");
        std::fs::create_dir_all(dir)?;
        let specs = plan_shards(web, config, target_bytes);
        let fingerprint = Self::fingerprint(web, config, seed, target_bytes);
        let mut report = RecoveryReport {
            shards_total: specs.len(),
            ..RecoveryReport::default()
        };

        // A manifest is only trusted when it certifies the same bytes
        // this invocation would produce: a manifest for a *different*
        // fingerprint is positive evidence the shards on disk belong to
        // another (web, config, seed, target), and reusing them would
        // build a frankenstore. Shards without a trusted manifest entry
        // are never reused at all — a header-vs-plan check cannot tell
        // two seeds apart (the plan derives from the web alone), and
        // because the manifest recommits after every rendered shard, a
        // crash strands at most one completed-but-unlisted shard.
        let old_manifest = match StoreManifest::load(dir) {
            Ok(m) if m.fingerprint == fingerprint && m.n_sites as usize == web.n_sites() => {
                report.manifest_reused = mode != RecoverMode::Cold;
                Some(m)
            }
            _ => None,
        };

        // Per-shard revision digests this invocation expects. A shard's
        // manifest `rev` line must equal the digest of its sites' current
        // revisions for the bytes on disk to still be the bytes this web
        // would render; an absent `revs` section means the store was
        // committed at revision 0 everywhere.
        let revisions = web.revisions();
        let any_rev = revisions.iter().any(|r| *r != 0);
        let want_revs: Vec<[u8; 32]> = specs
            .iter()
            .map(|s| crate::manifest::revision_digest(&revisions[s.sites.clone()]))
            .collect();
        let old_ext = old_manifest.as_ref().and_then(|m| m.ext.as_ref());
        let mut ext_entries: Vec<Option<ExtEntry>> = vec![None; specs.len()];

        // Sweep stray temp files from interrupted writes.
        let mut strays: Vec<PathBuf> = Vec::new();
        let mut ext_strays: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".tmp") {
                std::fs::remove_file(&path)?;
                report.tmp_removed += 1;
            } else if name.starts_with("shard-") && name.ends_with(".wsp") {
                strays.push(path);
            } else if name.starts_with("ext-") && name.ends_with(".wse") {
                ext_strays.push(path);
            }
        }

        let mut scratch = PageScratch::default();
        let mut url = String::new();
        let mut shards = Vec::with_capacity(specs.len());
        let mut entries = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let path = Self::shard_path(dir, i);
            let epath = crate::extcache::ext_path(dir, i);
            strays.retain(|p| p != &path);
            ext_strays.retain(|p| p != &epath);
            let existing = path.exists();
            let entry = old_manifest
                .as_ref()
                .and_then(|m| m.shards.get(i))
                .filter(|e| {
                    e.file == Self::shard_name(i)
                        && e.sites
                            == (spec.sites.start as u32..spec.sites.end as u32)
                        && e.first_page == spec.first_page
                        && e.page_count == spec.page_count
                });
            let vouched = mode != RecoverMode::Cold
                && existing
                && entry.is_some_and(|e| Self::reusable(&path, e, mode));
            let rev_ok = entry.is_some()
                && old_manifest
                    .as_ref()
                    .is_some_and(|m| m.rev_digest(i, spec.sites.len()) == want_revs[i]);
            if vouched && rev_ok {
                let header = read_header_path(&path)?;
                let committed = ManifestEntry::from_parts(Self::shard_name(i), spec, &header);
                // Same shard bytes ⟹ a cached extraction keyed on them is
                // still valid: carry the manifest entry forward. Repair
                // re-verifies the cache payload end to end first; Resume
                // trusts the manifest like it trusts shard digests.
                if let Some(section) = old_ext {
                    if let Some(Some(e)) = section.entries.get(i) {
                        let keep = if mode == RecoverMode::Repair {
                            matches!(
                                crate::extcache::load_entry(
                                    dir,
                                    i,
                                    e,
                                    committed.sha256,
                                    section.fingerprint,
                                ),
                                crate::extcache::ExtLoad::Hit(_)
                            )
                        } else {
                            epath.exists()
                        };
                        if keep {
                            ext_entries[i] = Some(e.clone());
                        } else if epath.exists() {
                            Self::quarantine_file(dir, &epath)?;
                            report.ext_dropped += 1;
                        } else {
                            report.ext_dropped += 1;
                        }
                    } else if epath.exists() {
                        Self::drop_ext_file(dir, &epath, mode)?;
                        report.ext_dropped += 1;
                    }
                } else if epath.exists() {
                    Self::drop_ext_file(dir, &epath, mode)?;
                    report.ext_dropped += 1;
                }
                entries.push(committed);
                shards.push(path);
                report.shards_reused += 1;
                continue;
            }
            if existing && mode != RecoverMode::Cold {
                if vouched {
                    // Intact and vouched for, just rendered at revisions
                    // that have since moved: overwrite in place. Staleness
                    // is a planned mutation, not evidence of damage, so
                    // nothing is quarantined.
                    report.shards_stale += 1;
                } else {
                    // Present but unusable: quarantine the evidence
                    // before rendering a replacement. (Cold mode just
                    // overwrites.)
                    Self::quarantine_file(dir, &path)?;
                    report.shards_quarantined += 1;
                }
            }
            // Whatever extraction was cached for the old bytes is dead
            // the moment the shard re-renders.
            if epath.exists() {
                Self::drop_ext_file(dir, &epath, mode)?;
                report.ext_dropped += 1;
            }
            let header = Self::write_one_shard(
                dir, i, spec, web, catalog, config, seed, session, &mut scratch, &mut url,
            )?;
            entries.push(ManifestEntry::from_parts(Self::shard_name(i), spec, &header));
            shards.push(path);
            report.shards_rendered += 1;
            // Recommit the manifest after every rendered shard, so that
            // whatever prefix survives a crash is vouched for and a
            // resume re-renders only the tail (plus at most this one
            // shard, if the crash lands between its rename and this
            // commit). Reused shards are already covered by the old
            // manifest, so pure-reuse iterations skip the rewrite; the
            // last shard is covered by the final commit below.
            if i + 1 < specs.len() {
                let partial = StoreManifest {
                    fingerprint,
                    n_sites: web.n_sites() as u32,
                    shards: entries.clone(),
                    revs: if any_rev {
                        want_revs[..entries.len()].to_vec()
                    } else {
                        Vec::new()
                    },
                    ext: Self::ext_section(old_ext, &ext_entries[..entries.len()]),
                };
                partial.write_atomic(dir, session)?;
            }
        }

        // Shard-looking files beyond the plan (e.g. from a larger
        // previous corpus) would never be read — the manifest does not
        // list them — but leaving them invites exactly the globbing
        // confusion this layer removes. Quarantine them.
        for stray in strays {
            Self::quarantine_file(dir, &stray)?;
            report.shards_quarantined += 1;
        }
        // Cache files beyond the plan are just dead cache: drop them
        // (quarantined under repair, deleted otherwise).
        for stray in ext_strays {
            Self::drop_ext_file(dir, &stray, mode)?;
            report.ext_dropped += 1;
        }

        let manifest = StoreManifest {
            fingerprint,
            n_sites: web.n_sites() as u32,
            shards: entries,
            revs: if any_rev { want_revs } else { Vec::new() },
            ext: Self::ext_section(old_ext, &ext_entries),
        };
        manifest.write_atomic(dir, session)?;

        let m = webstruct_util::obs::metrics();
        m.add("store.resume_skipped", report.shards_reused as u64);
        m.add("store.shards_rendered", report.shards_rendered as u64);
        m.add("store.shards_stale", report.shards_stale as u64);
        m.add("store.shards_quarantined", report.shards_quarantined as u64);
        m.add("store.ext_dropped", report.ext_dropped as u64);

        Ok((
            ShardStore {
                dir: dir.to_path_buf(),
                shards,
                manifest,
            },
            report,
        ))
    }

    /// Open an existing store by its manifest — the directory listing is
    /// never trusted. Validates that the manifest parses and checksums,
    /// that the shard ranges tile `0..n_sites` starting at site 0, that
    /// every listed shard file exists, and that each shard's header (64
    /// bytes of I/O per shard) matches its manifest entry, digest
    /// included. Payloads are *not* re-hashed here — that is
    /// [`scrub`](ShardStore::scrub)'s job (and each payload is verified
    /// anyway when the shard is opened for reading).
    ///
    /// # Errors
    /// [`ShardError::ManifestMissing`] / [`ManifestCorrupt`]
    /// (ShardError::ManifestCorrupt) / [`Gap`](ShardError::Gap) /
    /// [`MissingShard`](ShardError::MissingShard) /
    /// [`HeaderMismatch`](ShardError::HeaderMismatch), or I/O errors.
    pub fn open(dir: &Path) -> Result<ShardStore, ShardError> {
        let manifest = StoreManifest::load(dir)?;
        manifest.validate_coverage()?;
        let mut shards = Vec::with_capacity(manifest.shards.len());
        for (index, entry) in manifest.shards.iter().enumerate() {
            let path = dir.join(&entry.file);
            if !path.exists() {
                return Err(ShardError::MissingShard { index });
            }
            let header = read_header_path(&path)?;
            if let Some(field) = entry.header_mismatch(&header) {
                return Err(ShardError::HeaderMismatch { index, field });
            }
            shards.push(path);
        }
        Ok(ShardStore {
            dir: dir.to_path_buf(),
            shards,
            manifest,
        })
    }

    /// Re-hash and re-frame every shard against the manifest: the full
    /// integrity pass behind `webstruct scrub`. Reads every byte of the
    /// store (in streaming chunks — nothing is resident) and classifies
    /// each shard as verified, missing or corrupt, plus any stray files
    /// the manifest does not list.
    #[must_use]
    pub fn scrub(&self) -> ScrubReport {
        Self::scrub_manifest(&self.dir, &self.manifest)
    }

    /// [`scrub`](ShardStore::scrub) without requiring a clean
    /// [`open`](ShardStore::open) first: classifies damage in a store
    /// whose shards no longer pass open-time validation.
    ///
    /// # Errors
    /// Only manifest-level failures ([`ShardError::ManifestMissing`] /
    /// [`ManifestCorrupt`](ShardError::ManifestCorrupt)) — a readable
    /// manifest always yields a report, however damaged the shards.
    pub fn scrub_dir(dir: &Path) -> Result<ScrubReport, ShardError> {
        let manifest = StoreManifest::load(dir)?;
        Ok(Self::scrub_manifest(dir, &manifest))
    }

    fn scrub_manifest(dir: &Path, manifest: &StoreManifest) -> ScrubReport {
        let _span = webstruct_util::span!("scrub");
        let mut findings = Vec::with_capacity(manifest.shards.len());
        for (index, entry) in manifest.shards.iter().enumerate() {
            let path = dir.join(&entry.file);
            let status = if path.exists() {
                Self::scrub_one(&path, index, entry)
            } else {
                ScrubStatus::Missing
            };
            findings.push(ScrubFinding {
                index,
                file: entry.file.clone(),
                status,
            });
        }
        // Every cache entry the manifest vouches for gets the same
        // treatment as a shard under repair: existence, header keys
        // (shard digest + extractor fingerprint) and a full payload
        // re-hash. A fingerprint mismatch is a Corrupt finding — the
        // frankenstore case where cached extractions from a different
        // extractor config sit beside shards they do not describe.
        let mut ext_findings = Vec::new();
        if let Some(section) = &manifest.ext {
            for (index, maybe) in section.entries.iter().enumerate() {
                let Some(entry) = maybe else { continue };
                let shard_sha = manifest
                    .shards
                    .get(index)
                    .map_or([0u8; 32], |e| e.sha256);
                let status = match crate::extcache::load_entry(
                    dir,
                    index,
                    entry,
                    shard_sha,
                    section.fingerprint,
                ) {
                    crate::extcache::ExtLoad::Hit(_) => ScrubStatus::Verified,
                    crate::extcache::ExtLoad::Miss => ScrubStatus::Missing,
                    crate::extcache::ExtLoad::Poisoned(why) => {
                        ScrubStatus::Corrupt(ShardError::CorruptRecord(why))
                    }
                };
                ext_findings.push(ScrubFinding {
                    index,
                    file: entry.file.clone(),
                    status,
                });
            }
        }
        let listed: std::collections::HashSet<&str> = manifest
            .shards
            .iter()
            .map(|e| e.file.as_str())
            .chain(
                manifest
                    .ext
                    .iter()
                    .flat_map(|s| s.entries.iter().flatten().map(|e| e.file.as_str())),
            )
            .collect();
        let mut strays = Vec::new();
        if let Ok(dir_entries) = std::fs::read_dir(dir) {
            for e in dir_entries.flatten() {
                let name = e.file_name().to_string_lossy().into_owned();
                let shardlike = name.starts_with("shard-") && name.ends_with(".wsp");
                let extlike = name.starts_with("ext-") && name.ends_with(".wse");
                if (shardlike || extlike || name.ends_with(".tmp")) && !listed.contains(name.as_str())
                {
                    strays.push(name);
                }
            }
        }
        strays.sort();
        let report = ScrubReport {
            findings,
            ext_findings,
            strays,
        };
        let m = webstruct_util::obs::metrics();
        m.add("store.shards_verified", report.verified() as u64);
        m.add("store.shards_quarantined", 0); // ensure the counter exists next to verified
        m.add("store.ext_verified", report.ext_verified() as u64);
        report
    }

    /// Fully validate one shard file against its manifest entry.
    fn scrub_one(path: &Path, index: usize, entry: &ManifestEntry) -> ScrubStatus {
        let mut reader = match PageShardReader::open_path(path) {
            Ok(r) => r,
            Err(e) => return ScrubStatus::Corrupt(e),
        };
        if let Some(field) = entry.header_mismatch(reader.header()) {
            return ScrubStatus::Corrupt(ShardError::HeaderMismatch { index, field });
        }
        // Digest passed; now prove the record framing is sound end to end.
        let expected = reader.header().page_count;
        let mut rec = ShardRecord::default();
        let mut count = 0u32;
        loop {
            match reader.read_into(&mut rec) {
                Ok(true) => count += 1,
                Ok(false) => break,
                Err(e) => return ScrubStatus::Corrupt(e),
            }
        }
        if count != expected {
            return ScrubStatus::Corrupt(ShardError::CorruptRecord(
                "record count disagrees with header",
            ));
        }
        ScrubStatus::Verified
    }

    /// Directory the store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest the store was opened or written with.
    #[must_use]
    pub fn manifest(&self) -> &StoreManifest {
        &self.manifest
    }

    /// Number of shard files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the store has no shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Paths of the shard files, in site order.
    #[must_use]
    pub fn paths(&self) -> &[PathBuf] {
        &self.shards
    }

    /// Open shard `i` for reading (validates header + checksum).
    ///
    /// # Errors
    /// See [`PageShardReader::open`].
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn reader(&self, i: usize) -> Result<PageShardReader<BufReader<File>>, ShardError> {
        PageShardReader::open_path(&self.shards[i])
    }

    /// Commit extraction-cache entries into the manifest's `ext` section
    /// and atomically recommit `MANIFEST.wsm` — the same tmp → fsync →
    /// rename protocol every other commit uses, so a crash leaves either
    /// the old manifest or the new one, never a torn record. Entries must
    /// be indexed by shard (`None` = no cache for that shard); pass the
    /// extractor fingerprint the payloads were computed with.
    ///
    /// # Errors
    /// Propagates injected or real I/O failures from the recommit.
    ///
    /// # Panics
    /// Panics when `entries.len()` disagrees with the shard count.
    pub fn commit_extractions(
        &mut self,
        extractor_fp: [u8; 32],
        entries: Vec<Option<ExtEntry>>,
        session: &FaultSession,
    ) -> Result<(), ShardError> {
        assert_eq!(
            entries.len(),
            self.shards.len(),
            "one ext slot per shard, in shard order"
        );
        self.manifest.ext = if entries.iter().all(Option::is_none) {
            None
        } else {
            Some(ExtSection {
                fingerprint: extractor_fp,
                entries,
            })
        };
        self.manifest.write_atomic(&self.dir, session)
    }
}

/// A web that arrives shard-by-shard: either rendered on the fly from a
/// [`Web`] (no disk at all — peak memory is one page) or read back from a
/// [`ShardStore`] (peak memory is one record). Both sources yield the same
/// page bytes in the same order, which is what makes the streamed
/// pipeline's output byte-identical to the in-memory path.
pub enum ShardedWeb<'a> {
    /// Render pages directly from the generative model.
    Rendered {
        /// The site→mention relation.
        web: &'a Web,
        /// Entity catalog pages render against.
        catalog: &'a EntityCatalog,
        /// Rendering parameters.
        config: PageConfig,
        /// Corpus seed.
        seed: Seed,
        /// Shard cuts (from [`plan_shards`]).
        specs: Vec<ShardSpec>,
    },
    /// Read pages back from shard files.
    Stored(&'a ShardStore),
}

impl<'a> ShardedWeb<'a> {
    /// Sharded view of `web` rendered on the fly with default-size shards.
    #[must_use]
    pub fn rendered(
        web: &'a Web,
        catalog: &'a EntityCatalog,
        config: PageConfig,
        seed: Seed,
    ) -> Self {
        let specs = plan_shards(web, &config, DEFAULT_SHARD_BYTES);
        ShardedWeb::Rendered {
            web,
            catalog,
            config,
            seed,
            specs,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        match self {
            ShardedWeb::Rendered { specs, .. } => specs.len(),
            ShardedWeb::Stored(store) => store.len(),
        }
    }

    /// Stream every page of shard `i` through `f`, reusing one scratch
    /// record. This is the out-of-core workhorse: callers fold pages into
    /// an accumulator and never see more than one page in memory.
    ///
    /// # Errors
    /// Disk-backed shards can fail validation; rendered shards cannot.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn for_each_page(
        &self,
        i: usize,
        mut f: impl FnMut(PageId, SiteId, PageKind, &str),
    ) -> Result<u64, ShardError> {
        let mut bytes = 0u64;
        match self {
            ShardedWeb::Rendered {
                web,
                catalog,
                config,
                seed,
                specs,
            } => {
                let spec = &specs[i];
                let mut stream = PageStream::for_site_range(
                    web,
                    catalog,
                    config.clone(),
                    *seed,
                    spec.sites.clone(),
                    spec.first_page,
                );
                let mut scratch = PageScratch::default();
                while stream.render_into(&mut scratch) {
                    bytes += scratch.text().len() as u64;
                    f(scratch.id(), scratch.site(), scratch.kind(), scratch.text());
                }
            }
            ShardedWeb::Stored(store) => {
                let mut reader = store.reader(i)?;
                let mut rec = ShardRecord::default();
                while reader.read_into(&mut rec)? {
                    bytes += rec.text.len() as u64;
                    f(rec.id, rec.site, rec.kind, &rec.text);
                }
            }
        }
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::entity::CatalogConfig;
    use crate::web::WebConfig;
    use std::io::Cursor;

    fn tiny_setup() -> (EntityCatalog, Web) {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 300), Seed(21));
        let config = WebConfig::preset(Domain::Restaurants).scaled(0.01);
        let web = Web::generate(&catalog, &config, Seed(21));
        (catalog, web)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "webstruct-shard-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn plan_covers_every_site_once_with_prefix_page_ids() {
        let (_, web) = tiny_setup();
        let cfg = PageConfig::default();
        for target in [1u64, 50_000, u64::MAX] {
            let specs = plan_shards(&web, &cfg, target);
            assert!(!specs.is_empty());
            let mut next_site = 0usize;
            let mut next_page = 0u32;
            for s in &specs {
                assert_eq!(s.sites.start, next_site);
                assert_eq!(s.first_page, next_page);
                let pages: u32 = s
                    .sites
                    .clone()
                    .map(|i| PageStream::site_page_count(&web, &cfg, i))
                    .sum();
                assert_eq!(s.page_count, pages);
                next_site = s.sites.end;
                next_page += pages;
            }
            assert_eq!(next_site, web.n_sites());
        }
        // target=MAX puts everything in one shard.
        assert_eq!(plan_shards(&web, &cfg, u64::MAX).len(), 1);
    }

    #[test]
    fn estimated_bytes_rank_sites_like_rendered_bytes() {
        let (catalog, web) = tiny_setup();
        let cfg = PageConfig::default();
        // Actual rendered bytes per site.
        let mut actual = vec![0u64; web.n_sites()];
        for p in PageStream::new(&web, &catalog, cfg.clone(), Seed(3)) {
            actual[p.site.index()] += p.text.len() as u64;
        }
        let est: Vec<u64> = (0..web.n_sites())
            .map(|i| PageStream::estimated_site_bytes(&web, &cfg, i))
            .collect();
        // The estimate must put the true largest site within its top 3.
        let argmax = |v: &[u64]| (0..v.len()).max_by_key(|&i| v[i]).unwrap();
        let mut est_rank: Vec<usize> = (0..est.len()).collect();
        est_rank.sort_by_key(|&i| std::cmp::Reverse(est[i]));
        assert!(
            est_rank[..3].contains(&argmax(&actual)),
            "largest real site not in top-3 estimates"
        );
        // And sites with zero mentions estimate to zero.
        for i in 0..web.n_sites() {
            if web.mentions_of(web.sites[i].id).is_empty() {
                assert_eq!(est[i], 0);
            }
        }
    }

    #[test]
    fn shard_roundtrip_is_byte_identical() {
        let (catalog, web) = tiny_setup();
        let cfg = PageConfig::default();
        let dir = tmpdir("roundtrip");
        let store = ShardStore::write(&dir, &web, &catalog, &cfg, Seed(3), 64 * 1024)
            .expect("write shards");
        assert!(store.len() > 1, "fixture should cut multiple shards");
        let direct: Vec<Page> = PageStream::new(&web, &catalog, cfg, Seed(3)).collect();
        let mut from_disk: Vec<Page> = Vec::new();
        for i in 0..store.len() {
            for page in store.reader(i).expect("open shard") {
                from_disk.push(page.expect("read record"));
            }
        }
        assert_eq!(direct.len(), from_disk.len());
        for (a, b) in direct.iter().zip(&from_disk) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.site, b.site);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.url, b.url);
            assert_eq!(a.text, b.text, "page {} text diverged", a.id.raw());
        }
        // Re-open via directory listing finds the same shards.
        let reopened = ShardStore::open(&dir).expect("open store");
        assert_eq!(reopened.paths(), store.paths());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_fields_describe_the_shard() {
        let (catalog, web) = tiny_setup();
        let cfg = PageConfig::default();
        let dir = tmpdir("header");
        let store =
            ShardStore::write(&dir, &web, &catalog, &cfg, Seed(3), 64 * 1024).expect("write");
        let specs = plan_shards(&web, &cfg, 64 * 1024);
        assert_eq!(store.len(), specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let r = store.reader(i).expect("open");
            let h = r.header();
            assert_eq!(h.page_count, spec.page_count);
            assert_eq!(h.first_page, spec.first_page);
            assert!(h.site_lo as usize >= spec.sites.start);
            assert!(h.site_hi as usize <= spec.sites.end);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_shards_are_rejected() {
        let (catalog, web) = tiny_setup();
        let cfg = PageConfig::default();
        let dir = tmpdir("corrupt");
        let store =
            ShardStore::write(&dir, &web, &catalog, &cfg, Seed(3), u64::MAX).expect("write");
        let path = &store.paths()[0];
        let clean = std::fs::read(path).expect("read shard bytes");
        assert!(clean.len() > SHARD_HEADER_LEN + 64);

        // Bad magic.
        let mut bad = clean.clone();
        bad[0] = b'X';
        assert!(matches!(
            PageShardReader::open(Cursor::new(&bad[..])),
            Err(ShardError::BadMagic(_))
        ));
        // Bad version.
        let mut bad = clean.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            PageShardReader::open(Cursor::new(&bad[..])),
            Err(ShardError::BadVersion(99))
        ));
        // Flipped payload byte → checksum mismatch.
        let mut bad = clean.clone();
        let k = SHARD_HEADER_LEN + 40;
        bad[k] ^= 0x5a;
        assert!(matches!(
            PageShardReader::open(Cursor::new(&bad[..])),
            Err(ShardError::ChecksumMismatch)
        ));
        // Flipped checksum byte → also a mismatch.
        let mut bad = clean.clone();
        bad[33] ^= 0x5a;
        assert!(matches!(
            PageShardReader::open(Cursor::new(&bad[..])),
            Err(ShardError::ChecksumMismatch)
        ));
        // Truncated payload.
        let cut = &clean[..clean.len() - 17];
        assert!(matches!(
            PageShardReader::open(Cursor::new(cut)),
            Err(ShardError::Truncated { .. })
        ));
        // Truncated header.
        assert!(matches!(
            PageShardReader::open(Cursor::new(&clean[..10])),
            Err(ShardError::Truncated { .. })
        ));
        // The untouched file still opens.
        assert!(PageShardReader::open(Cursor::new(&clean[..])).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_shard_roundtrips() {
        let mut buf = Cursor::new(Vec::new());
        let w = PageShardWriter::new(&mut buf);
        let h = w.finish().expect("finish empty");
        assert_eq!(h.page_count, 0);
        assert_eq!(h.payload_len, 0);
        let bytes = buf.into_inner();
        let mut r = PageShardReader::open(Cursor::new(&bytes[..])).expect("open empty");
        let mut rec = ShardRecord::default();
        assert!(!r.read_into(&mut rec).expect("read"));
    }

    #[test]
    fn sharded_web_rendered_and_stored_agree() {
        let (catalog, web) = tiny_setup();
        let cfg = PageConfig::default();
        let dir = tmpdir("agree");
        let store = ShardStore::write(&dir, &web, &catalog, &cfg, Seed(3), 64 * 1024)
            .expect("write shards");
        let rendered = {
            let specs = plan_shards(&web, &cfg, 64 * 1024);
            ShardedWeb::Rendered {
                web: &web,
                catalog: &catalog,
                config: cfg.clone(),
                seed: Seed(3),
                specs,
            }
        };
        let stored = ShardedWeb::Stored(&store);
        assert_eq!(rendered.n_shards(), stored.n_shards());
        for i in 0..rendered.n_shards() {
            let mut a = Vec::new();
            let ab = rendered
                .for_each_page(i, |id, site, kind, text| {
                    a.push((id, site, kind, text.to_owned()));
                })
                .expect("rendered shard");
            let mut b = Vec::new();
            let bb = stored
                .for_each_page(i, |id, site, kind, text| {
                    b.push((id, site, kind, text.to_owned()));
                })
                .expect("stored shard");
            assert_eq!(a, b, "shard {i} diverged");
            assert_eq!(ab, bb);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- durability: crash sweeps, corruption taxonomy, recovery ----

    use webstruct_util::iofault::IoFaultPlan;

    const TORTURE_TARGET: u64 = 256 * 1024;

    /// An even smaller web than [`tiny_setup`]: the torture sweeps below
    /// re-render the store once per crash point, so the fixture must be
    /// cheap while still cutting several shards.
    fn micro_setup() -> (EntityCatalog, Web) {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 80), Seed(21));
        let config = WebConfig::preset(Domain::Restaurants).scaled(0.002);
        let web = Web::generate(&catalog, &config, Seed(21));
        (catalog, web)
    }

    /// Every top-level file of a store (shards + manifest), name-sorted —
    /// the byte-identity oracle for recovery convergence. `.quarantine/`
    /// contents are deliberately excluded: they are evidence, not store.
    fn store_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .expect("read store dir")
            .map(|e| e.expect("dir entry"))
            .filter(|e| e.path().is_file())
            .map(|e| {
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).expect("read store file"),
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Cold-write a reference store, returning its files and the number
    /// of I/O ops the write issues (= the crash-sweep domain).
    fn reference_store(
        dir: &Path,
        web: &Web,
        catalog: &EntityCatalog,
    ) -> (Vec<(String, Vec<u8>)>, u64) {
        let session = FaultSession::clean();
        ShardStore::write_with_session(
            dir,
            web,
            catalog,
            &PageConfig::default(),
            Seed(3),
            TORTURE_TARGET,
            &session,
        )
        .expect("cold reference write");
        (store_files(dir), session.ops_issued())
    }

    #[test]
    fn crash_point_sweep_converges_to_cold_store() {
        let (catalog, web) = micro_setup();
        let cfg = PageConfig::default();
        let refdir = tmpdir("sweep-ref");
        let (reference, total_ops) = reference_store(&refdir, &web, &catalog);
        assert!(total_ops > 20, "sweep domain suspiciously small: {total_ops}");

        // Crash points: every op across the first shard-and-a-half (all
        // op kinds — create, buffered writes, header seek+stamp, fsync,
        // rename, dir fsync), a stride through the steady-state middle,
        // and every op of the manifest commit tail.
        let mut points: Vec<u64> = (0..total_ops.min(40)).collect();
        let stride = (total_ops.saturating_sub(48) / 32).max(7);
        let mut op = 40;
        while op + 8 < total_ops {
            points.push(op);
            op += stride;
        }
        points.extend(total_ops.saturating_sub(8).max(40)..total_ops);

        let dir = tmpdir("sweep");
        for &k in &points {
            let _ = std::fs::remove_dir_all(&dir);
            let session = FaultSession::new(IoFaultPlan::crash_at(k, Seed(1_000 + k)));
            let crashed = ShardStore::write_with_session(
                &dir, &web, &catalog, &cfg, Seed(3), TORTURE_TARGET, &session,
            );
            assert!(crashed.is_err(), "crash at op {k}/{total_ops} did not surface");
            // Open-or-repair must converge: either the manifest committed
            // (open validates a complete store) or resume re-renders the
            // missing tail.
            if ShardStore::open(&dir).is_err() {
                ShardStore::write_resumable(&dir, &web, &catalog, &cfg, Seed(3), TORTURE_TARGET)
                    .unwrap_or_else(|e| panic!("resume after crash at op {k} failed: {e}"));
            }
            assert_eq!(
                store_files(&dir),
                reference,
                "store after crash at op {k}/{total_ops} is not byte-identical to cold"
            );
        }
        let _ = std::fs::remove_dir_all(&refdir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flaky_io_torture_converges_via_scrub_and_repair() {
        let (catalog, web) = micro_setup();
        let cfg = PageConfig::default();
        let refdir = tmpdir("flaky-ref");
        let (reference, _) = reference_store(&refdir, &web, &catalog);

        let dir = tmpdir("flaky");
        for trial in 0..6u64 {
            let _ = std::fs::remove_dir_all(&dir);
            let session =
                FaultSession::new(IoFaultPlan::flaky(0.015, 0.5, Seed(7_000 + trial)));
            let wrote = ShardStore::write_with_session(
                &dir, &web, &catalog, &cfg, Seed(3), TORTURE_TARGET, &session,
            );
            // Bit flips and lost writes can leave a "successful" write
            // silently corrupt — scrub must catch what errors did not.
            let clean = wrote.is_ok()
                && matches!(ShardStore::scrub_dir(&dir), Ok(r) if r.is_clean());
            if !clean {
                ShardStore::repair(&dir, &web, &catalog, &cfg, Seed(3), TORTURE_TARGET)
                    .unwrap_or_else(|e| panic!("repair after flaky trial {trial} failed: {e}"));
            }
            assert_eq!(
                store_files(&dir),
                reference,
                "flaky trial {trial} did not converge to the cold store"
            );
        }
        let _ = std::fs::remove_dir_all(&refdir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_after_kill_skips_complete_shards() {
        let (catalog, web) = micro_setup();
        let cfg = PageConfig::default();
        let refdir = tmpdir("resume-ref");
        let (reference, total_ops) = reference_store(&refdir, &web, &catalog);

        let dir = tmpdir("resume");
        let kill_at = total_ops * 6 / 10;
        let session = FaultSession::new(IoFaultPlan::crash_at(kill_at, Seed(5)));
        assert!(ShardStore::write_with_session(
            &dir, &web, &catalog, &cfg, Seed(3), TORTURE_TARGET, &session,
        )
        .is_err());
        // The graceful error path must not leak the in-flight temp file.
        assert!(
            store_files(&dir).iter().all(|(n, _)| !n.ends_with(".tmp")),
            "crashed write leaked a temp file"
        );

        let (_, report) =
            ShardStore::write_resumable(&dir, &web, &catalog, &cfg, Seed(3), TORTURE_TARGET)
                .expect("resume");
        assert!(report.shards_reused >= 1, "nothing reused: {report:?}");
        assert!(report.shards_rendered >= 1, "nothing re-rendered: {report:?}");
        assert_eq!(
            report.shards_reused + report.shards_rendered,
            report.shards_total
        );
        assert_eq!(store_files(&dir), reference);

        // A second resume over the now-complete store skips everything.
        let (_, again) =
            ShardStore::write_resumable(&dir, &web, &catalog, &cfg, Seed(3), TORTURE_TARGET)
                .expect("resume again");
        assert_eq!(again.shards_reused, again.shards_total);
        assert_eq!(again.shards_rendered, 0);
        assert!(again.manifest_reused);
        assert_eq!(store_files(&dir), reference);

        // A different seed must refuse to reuse anything (fingerprint
        // mismatch ⇒ frankenstore guard) and still converge for *its*
        // seed.
        let (_, other) =
            ShardStore::write_resumable(&dir, &web, &catalog, &cfg, Seed(4), TORTURE_TARGET)
                .expect("resume across seeds");
        assert_eq!(other.shards_reused, 0, "reused shards across seeds");
        let _ = std::fs::remove_dir_all(&refdir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unfinished_writer_drop_removes_temp_file() {
        let dir = tmpdir("tempclean");
        let tmp = dir.join("shard-00000.wsp.tmp");
        let file = File::create(&tmp).expect("create tmp");
        let writer = PageShardWriter::new(BufWriter::new(file))
            .with_cleanup(TempFileGuard::new(tmp.clone()));
        assert!(tmp.exists());
        drop(writer);
        assert!(!tmp.exists(), "dropped unfinished writer left its temp file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_missing_shards_gaps_and_bad_manifests() {
        let (catalog, web) = micro_setup();
        let cfg = PageConfig::default();
        let dir = tmpdir("gaps");
        let store = ShardStore::write(&dir, &web, &catalog, &cfg, Seed(3), TORTURE_TARGET)
            .expect("write");
        assert!(store.len() > 2);

        // Deleting a shard the manifest lists is MissingShard, not a
        // silently smaller web.
        let victim = store.paths()[1].clone();
        let pristine = std::fs::read(&victim).expect("read victim");
        std::fs::remove_file(&victim).expect("delete shard");
        match ShardStore::open(&dir) {
            Err(ShardError::MissingShard { index: 1 }) => {}
            other => panic!("open with deleted shard: {other:?}"),
        }
        std::fs::write(&victim, &pristine).expect("restore shard");
        assert!(ShardStore::open(&dir).is_ok());

        // A manifest whose ranges do not tile the site axis is a Gap.
        let mut manifest = StoreManifest::load(&dir).expect("load manifest");
        manifest.shards[1].sites.start += 1;
        manifest
            .write_atomic(&dir, &FaultSession::clean())
            .expect("write gapped manifest");
        match ShardStore::open(&dir) {
            Err(ShardError::Gap { .. }) => {}
            other => panic!("open with gapped manifest: {other:?}"),
        }

        // A truncated manifest fails its own checksum.
        let mpath = StoreManifest::path_in(&dir);
        let text = std::fs::read_to_string(&mpath).expect("read manifest");
        std::fs::write(&mpath, &text[..text.len() / 2]).expect("truncate manifest");
        match ShardStore::open(&dir) {
            Err(ShardError::ManifestCorrupt(_)) => {}
            other => panic!("open with truncated manifest: {other:?}"),
        }

        // No manifest at all is ManifestMissing — directory listings are
        // never trusted, however plausible they look.
        std::fs::remove_file(&mpath).expect("delete manifest");
        match ShardStore::open(&dir) {
            Err(ShardError::ManifestMissing) => {}
            other => panic!("open without manifest: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_taxonomy_yields_precise_errors() {
        let (catalog, web) = micro_setup();
        let cfg = PageConfig::default();
        let dir = tmpdir("taxonomy");
        let store = ShardStore::write(&dir, &web, &catalog, &cfg, Seed(3), TORTURE_TARGET)
            .expect("write");
        let victim = store.paths()[0].clone();
        let pristine = std::fs::read(&victim).expect("read shard");
        let payload_len = u64::from_le_bytes(pristine[24..32].try_into().unwrap());
        assert!(payload_len > 0);

        let corrupt_with = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut bytes = pristine.clone();
            mutate(&mut bytes);
            std::fs::write(&victim, &bytes).expect("write corrupted shard");
            PageShardReader::open_path(&victim)
        };
        let scrub_status = || {
            let report = ShardStore::scrub_dir(&dir).expect("scrub");
            assert!(!report.is_clean());
            report
                .findings
                .into_iter()
                .find(|f| f.index == 0)
                .expect("finding for shard 0")
                .status
        };

        // Magic.
        match corrupt_with(&|b| b[0] ^= 0xFF) {
            Err(ShardError::BadMagic(_)) => {}
            other => panic!("flipped magic: {other:?}"),
        }
        assert!(matches!(
            scrub_status(),
            ScrubStatus::Corrupt(ShardError::BadMagic(_))
        ));

        // Version.
        match corrupt_with(&|b| b[4] = 99) {
            Err(ShardError::BadVersion(99)) => {}
            other => panic!("flipped version: {other:?}"),
        }

        // Payload length: growing it promises bytes that are not there.
        match corrupt_with(&|b| {
            b[24..32].copy_from_slice(&(payload_len + 8).to_le_bytes());
        }) {
            Err(ShardError::Truncated { expected, got }) => {
                assert_eq!(expected, payload_len + 8);
                assert_eq!(got, payload_len);
            }
            other => panic!("grown payload_len: {other:?}"),
        }

        // Digest stamp.
        match corrupt_with(&|b| b[40] ^= 0x01) {
            Err(ShardError::ChecksumMismatch) => {}
            other => panic!("flipped digest: {other:?}"),
        }
        // ...which open() catches against the manifest without hashing.
        match ShardStore::open(&dir) {
            Err(ShardError::HeaderMismatch { index: 0, field }) => assert_eq!(field, "sha256"),
            other => panic!("open with flipped digest: {other:?}"),
        }

        // Mid-payload bit flip: header is intact, only the hash knows.
        let mid = SHARD_HEADER_LEN + payload_len as usize / 2;
        match corrupt_with(&move |b| b[mid] ^= 0x10) {
            Err(ShardError::ChecksumMismatch) => {}
            other => panic!("payload bit flip: {other:?}"),
        }
        assert!(matches!(
            scrub_status(),
            ScrubStatus::Corrupt(ShardError::ChecksumMismatch)
        ));

        // Truncation at a record boundary (payload cut short).
        match corrupt_with(&|b| b.truncate(SHARD_HEADER_LEN + payload_len as usize / 2)) {
            Err(ShardError::Truncated { expected, got }) => {
                assert_eq!(expected, payload_len);
                assert_eq!(got, payload_len / 2);
            }
            other => panic!("truncated payload: {other:?}"),
        }

        // Repair puts every case right again.
        std::fs::write(&victim, &pristine[..pristine.len() / 2]).expect("re-corrupt");
        let (_, report) = ShardStore::repair(&dir, &web, &catalog, &cfg, Seed(3), TORTURE_TARGET)
            .expect("repair");
        assert_eq!(report.shards_quarantined, 1);
        assert_eq!(std::fs::read(&victim).expect("read repaired"), pristine);
        assert!(ShardStore::scrub_dir(&dir).expect("scrub").is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
