//! Out-of-core page shards: a compact length-prefixed binary format that
//! lets full-scale corpora stream through the pipeline with peak memory
//! bounded by the largest shard, not the corpus.
//!
//! ## On-disk layout
//!
//! Every shard file is a 64-byte header followed by a payload of
//! length-prefixed page records (all integers little-endian):
//!
//! ```text
//! header (64 bytes)
//!   magic        [u8; 4]   = b"WSP1"
//!   version      u32       = 1
//!   page_count   u32         records in the payload
//!   first_page   u32         global id of the first record
//!   site_lo      u32         first site index covered (inclusive)
//!   site_hi      u32         last site index covered (exclusive)
//!   payload_len  u64         payload bytes after the header
//!   sha256       [u8; 32]    SHA-256 of the payload bytes
//! record
//!   page_id      u32
//!   site         u32
//!   kind         u8        0 = listing, 1 = review
//!   url_len      u16
//!   text_len     u32
//!   url          [u8; url_len]
//!   text         [u8; text_len]
//! ```
//!
//! The header checksum makes corruption loud: [`PageShardReader::open`]
//! streams the whole payload once through SHA-256 (in small fixed-size
//! chunks — the payload is never resident) and refuses to yield a single
//! record from a shard whose bytes do not match, then seeks back and
//! decodes records on a second buffered pass. Truncation is caught the
//! same way (short payload reads are an error, not EOF).
//!
//! ## Streaming contract
//!
//! Page rendering is a pure function of `(seed, page id)` (see
//! [`PageStream::for_site_range`]), so a shard written from a site range
//! stores exactly the bytes the in-memory stream would have produced for
//! those pages — and [`ShardedWeb`] can transparently *render* shards
//! (never touching disk) or *read* them back from a [`ShardStore`] with
//! byte-identical results either way.

use crate::entity::EntityCatalog;
use crate::page::{Page, PageConfig, PageKind, PageScratch, PageStream};
use crate::web::Web;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use webstruct_util::ids::{PageId, SiteId};
use webstruct_util::rng::Seed;
use webstruct_util::sha::Sha256;

/// Shard file magic: "WebStruct Pages v1".
pub const SHARD_MAGIC: [u8; 4] = *b"WSP1";
/// Current shard format version.
pub const SHARD_VERSION: u32 = 1;
/// Header size in bytes.
pub const SHARD_HEADER_LEN: usize = 64;
/// Default shard payload target: 32 MiB keeps peak reader RSS small while
/// amortising per-shard overhead over tens of thousands of pages.
pub const DEFAULT_SHARD_BYTES: u64 = 32 * 1024 * 1024;

/// Everything that can go wrong writing or reading a shard.
#[derive(Debug)]
pub enum ShardError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`SHARD_MAGIC`].
    BadMagic([u8; 4]),
    /// The file's version is not [`SHARD_VERSION`].
    BadVersion(u32),
    /// The file ended before the header or payload was complete.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The payload's SHA-256 does not match the header stamp.
    ChecksumMismatch,
    /// A record inside the payload is malformed (lengths overrun the
    /// payload, invalid page kind, non-UTF-8 text).
    CorruptRecord(&'static str),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard i/o error: {e}"),
            ShardError::BadMagic(m) => write!(f, "bad shard magic {m:?} (want WSP1)"),
            ShardError::BadVersion(v) => write!(f, "unsupported shard version {v}"),
            ShardError::Truncated { expected, got } => {
                write!(f, "truncated shard: expected {expected} bytes, got {got}")
            }
            ShardError::ChecksumMismatch => write!(f, "shard payload checksum mismatch"),
            ShardError::CorruptRecord(why) => write!(f, "corrupt shard record: {why}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// Parsed shard header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHeader {
    /// Records in the payload.
    pub page_count: u32,
    /// Global id of the first record.
    pub first_page: u32,
    /// First site index covered (inclusive).
    pub site_lo: u32,
    /// Last site index covered (exclusive).
    pub site_hi: u32,
    /// Payload bytes after the header.
    pub payload_len: u64,
    /// SHA-256 of the payload.
    pub sha256: [u8; 32],
}

/// One shard's slice of the site axis, with the prefix-sum page numbering
/// and byte estimate the scheduler balances on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Sites `[start, end)` rendered into this shard.
    pub sites: std::ops::Range<usize>,
    /// Global id of the shard's first page (prefix sum of earlier sites).
    pub first_page: u32,
    /// Pages the shard contributes.
    pub page_count: u32,
    /// Estimated rendered bytes ([`PageStream::estimated_site_bytes`]).
    pub est_bytes: u64,
}

/// Cut the web's sites into contiguous shards of roughly `target_bytes`
/// estimated rendered size each. Every site lands in exactly one shard; a
/// single site larger than the target gets a shard to itself (shards never
/// split a site, so each shard is independently renderable).
#[must_use]
pub fn plan_shards(web: &Web, config: &PageConfig, target_bytes: u64) -> Vec<ShardSpec> {
    let target = target_bytes.max(1);
    let mut specs = Vec::new();
    let mut start = 0usize;
    let mut first_page = 0u32;
    let mut pages = 0u32;
    let mut bytes = 0u64;
    for i in 0..web.n_sites() {
        bytes += PageStream::estimated_site_bytes(web, config, i);
        pages += PageStream::site_page_count(web, config, i);
        if bytes >= target {
            specs.push(ShardSpec {
                sites: start..i + 1,
                first_page,
                page_count: pages,
                est_bytes: bytes,
            });
            start = i + 1;
            first_page += pages;
            pages = 0;
            bytes = 0;
        }
    }
    if start < web.n_sites() {
        specs.push(ShardSpec {
            sites: start..web.n_sites(),
            first_page,
            page_count: pages,
            est_bytes: bytes,
        });
    }
    specs
}

/// Streaming shard writer over any seekable [`Write`] sink (normally a
/// `BufWriter<File>`). The SHA-256 stamp and payload length live in the
/// *header*, which precedes the payload on disk — so the writer stamps a
/// placeholder header first, streams each record straight to the sink
/// while hashing it incrementally, and seeks back to patch the real
/// header in [`finish`](PageShardWriter::finish). Memory is therefore
/// O(one record) no matter how large the shard grows — a single
/// Zipf-head site can render tens of megabytes, and none of it is ever
/// resident here.
#[derive(Debug)]
pub struct PageShardWriter<W: Write + Seek> {
    sink: W,
    sha: Sha256,
    record: Vec<u8>,
    payload_len: u64,
    page_count: u32,
    first_page: Option<u32>,
    site_lo: u32,
    site_hi: u32,
    header_written: bool,
}

fn encode_header(header: &ShardHeader) -> [u8; SHARD_HEADER_LEN] {
    let mut head = [0u8; SHARD_HEADER_LEN];
    head[0..4].copy_from_slice(&SHARD_MAGIC);
    head[4..8].copy_from_slice(&SHARD_VERSION.to_le_bytes());
    head[8..12].copy_from_slice(&header.page_count.to_le_bytes());
    head[12..16].copy_from_slice(&header.first_page.to_le_bytes());
    head[16..20].copy_from_slice(&header.site_lo.to_le_bytes());
    head[20..24].copy_from_slice(&header.site_hi.to_le_bytes());
    head[24..32].copy_from_slice(&header.payload_len.to_le_bytes());
    head[32..64].copy_from_slice(&header.sha256);
    head
}

impl<W: Write + Seek> PageShardWriter<W> {
    /// Start a shard aimed at `sink` (positioned where the header goes).
    #[must_use]
    pub fn new(sink: W) -> Self {
        PageShardWriter {
            sink,
            sha: Sha256::new(),
            record: Vec::new(),
            payload_len: 0,
            page_count: 0,
            first_page: None,
            site_lo: u32::MAX,
            site_hi: 0,
            header_written: false,
        }
    }

    /// Append one page record, streaming it straight to the sink.
    ///
    /// # Errors
    /// Propagates sink I/O errors.
    ///
    /// # Panics
    /// Panics when the URL exceeds `u16::MAX` bytes or the text exceeds
    /// `u32::MAX` bytes — neither occurs for generated pages.
    pub fn push(
        &mut self,
        id: PageId,
        site: SiteId,
        kind: PageKind,
        url: &str,
        text: &str,
    ) -> Result<(), ShardError> {
        if !self.header_written {
            self.sink.write_all(&[0u8; SHARD_HEADER_LEN])?;
            self.header_written = true;
        }
        let url_len = u16::try_from(url.len()).expect("url fits u16");
        let text_len = u32::try_from(text.len()).expect("text fits u32");
        self.record.clear();
        self.record.extend_from_slice(&id.raw().to_le_bytes());
        self.record.extend_from_slice(&site.raw().to_le_bytes());
        self.record.push(match kind {
            PageKind::Listing => 0,
            PageKind::Review => 1,
        });
        self.record.extend_from_slice(&url_len.to_le_bytes());
        self.record.extend_from_slice(&text_len.to_le_bytes());
        self.record.extend_from_slice(url.as_bytes());
        self.record.extend_from_slice(text.as_bytes());
        self.sha.update(&self.record);
        self.sink.write_all(&self.record)?;
        self.payload_len += self.record.len() as u64;
        self.page_count += 1;
        self.first_page.get_or_insert(id.raw());
        self.site_lo = self.site_lo.min(site.raw());
        self.site_hi = self.site_hi.max(site.raw() + 1);
        Ok(())
    }

    /// Seek back and stamp the real header over the placeholder, then
    /// flush. Returns the header as written.
    ///
    /// # Errors
    /// Propagates sink I/O errors.
    pub fn finish(mut self) -> Result<ShardHeader, ShardError> {
        if !self.header_written {
            self.sink.write_all(&[0u8; SHARD_HEADER_LEN])?;
        }
        let header = ShardHeader {
            page_count: self.page_count,
            first_page: self.first_page.unwrap_or(0),
            site_lo: if self.site_lo == u32::MAX { 0 } else { self.site_lo },
            site_hi: self.site_hi,
            payload_len: self.payload_len,
            sha256: self.sha.finalize(),
        };
        self.sink.seek(SeekFrom::Current(-(self.payload_len as i64) - SHARD_HEADER_LEN as i64))?;
        self.sink.write_all(&encode_header(&header))?;
        self.sink.flush()?;
        Ok(header)
    }
}

/// Chunk size for the reader's streaming checksum pass. Large enough to
/// amortise syscalls, small enough that validation memory is invisible
/// next to the accumulators it feeds.
const HASH_CHUNK: usize = 64 * 1024;

/// Shard reader: validates header + checksum up front with a streaming
/// hash pass (the payload is never resident), then seeks back and yields
/// records into reused buffers (or owned [`Page`]s via the [`Iterator`]
/// impl). Peak memory is O(one record), not O(shard) — the property that
/// keeps full-scale extraction flat even when a Zipf-head site makes one
/// shard tens of megabytes.
#[derive(Debug)]
pub struct PageShardReader<R: Read + Seek> {
    reader: R,
    header: ShardHeader,
    remaining: u64,
    body: Vec<u8>,
}

impl<R: Read + Seek> PageShardReader<R> {
    /// Read and validate a whole shard from `reader` (normally a
    /// `BufReader<File>`): magic, version, payload length, checksum. The
    /// payload is hashed in [`HASH_CHUNK`]-sized chunks and the reader
    /// then seeks back to the first record, so validation never holds
    /// more than one chunk in memory.
    ///
    /// # Errors
    /// Any [`ShardError`] variant; a shard that opens cleanly will not
    /// fail checksum mid-iteration (records can still be rejected as
    /// corrupt if lengths overrun — that indicates a writer bug, not
    /// bitrot, since the checksum already passed).
    pub fn open(mut reader: R) -> Result<Self, ShardError> {
        let start = reader.stream_position()?;
        let mut head = [0u8; SHARD_HEADER_LEN];
        let mut filled = 0usize;
        while filled < SHARD_HEADER_LEN {
            let n = reader.read(&mut head[filled..])?;
            if n == 0 {
                return Err(ShardError::Truncated {
                    expected: SHARD_HEADER_LEN as u64,
                    got: filled as u64,
                });
            }
            filled += n;
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&head[0..4]);
        if magic != SHARD_MAGIC {
            return Err(ShardError::BadMagic(magic));
        }
        let u32le = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("4 bytes"));
        let version = u32le(&head[4..8]);
        if version != SHARD_VERSION {
            return Err(ShardError::BadVersion(version));
        }
        let header = ShardHeader {
            page_count: u32le(&head[8..12]),
            first_page: u32le(&head[12..16]),
            site_lo: u32le(&head[16..20]),
            site_hi: u32le(&head[20..24]),
            payload_len: u64::from_le_bytes(head[24..32].try_into().expect("8 bytes")),
            sha256: head[32..64].try_into().expect("32 bytes"),
        };
        let mut sha = Sha256::new();
        let mut chunk = vec![0u8; HASH_CHUNK.min(header.payload_len as usize).max(1)];
        let mut hashed = 0u64;
        while hashed < header.payload_len {
            let want = chunk.len().min((header.payload_len - hashed) as usize);
            let n = reader.read(&mut chunk[..want])?;
            if n == 0 {
                return Err(ShardError::Truncated {
                    expected: header.payload_len,
                    got: hashed,
                });
            }
            sha.update(&chunk[..n]);
            hashed += n as u64;
        }
        if sha.finalize() != header.sha256 {
            return Err(ShardError::ChecksumMismatch);
        }
        reader.seek(SeekFrom::Start(start + SHARD_HEADER_LEN as u64))?;
        Ok(PageShardReader {
            reader,
            remaining: header.payload_len,
            header,
            body: Vec::new(),
        })
    }

    /// The validated header.
    #[must_use]
    pub fn header(&self) -> &ShardHeader {
        &self.header
    }

    /// Decode the next record into `out`'s reused buffers. Returns
    /// `Ok(false)` at end of shard. Steady-state calls allocate nothing
    /// once the buffers reach the largest record.
    ///
    /// # Errors
    /// [`ShardError::CorruptRecord`] when record framing is inconsistent.
    pub fn read_into(&mut self, out: &mut ShardRecord) -> Result<bool, ShardError> {
        if self.remaining == 0 {
            return Ok(false);
        }
        if self.remaining < 15 {
            return Err(ShardError::CorruptRecord("record prefix overruns payload"));
        }
        let mut prefix = [0u8; 15];
        self.reader.read_exact(&mut prefix)?;
        let u32le = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("4 bytes"));
        let id = u32le(&prefix[0..4]);
        let site = u32le(&prefix[4..8]);
        let kind = match prefix[8] {
            0 => PageKind::Listing,
            1 => PageKind::Review,
            _ => return Err(ShardError::CorruptRecord("unknown page kind")),
        };
        let url_len = u16::from_le_bytes(prefix[9..11].try_into().expect("2 bytes")) as usize;
        let text_len = u32le(&prefix[11..15]) as usize;
        if self.remaining - 15 < (url_len + text_len) as u64 {
            return Err(ShardError::CorruptRecord("record body overruns payload"));
        }
        self.body.resize(url_len + text_len, 0);
        self.reader.read_exact(&mut self.body)?;
        let url = std::str::from_utf8(&self.body[..url_len])
            .map_err(|_| ShardError::CorruptRecord("url is not UTF-8"))?;
        let text = std::str::from_utf8(&self.body[url_len..])
            .map_err(|_| ShardError::CorruptRecord("text is not UTF-8"))?;
        out.id = PageId::new(id);
        out.site = SiteId::new(site);
        out.kind = kind;
        out.url.clear();
        out.url.push_str(url);
        out.text.clear();
        out.text.push_str(text);
        self.remaining -= 15 + (url_len + text_len) as u64;
        Ok(true)
    }
}

impl PageShardReader<BufReader<File>> {
    /// Open the shard file at `path` through a `BufReader`.
    ///
    /// # Errors
    /// See [`PageShardReader::open`].
    pub fn open_path(path: &Path) -> Result<Self, ShardError> {
        Self::open(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> Iterator for PageShardReader<R> {
    type Item = Result<Page, ShardError>;

    /// Owned-`Page` compatibility path; hot loops should reuse a
    /// [`ShardRecord`] via [`PageShardReader::read_into`].
    fn next(&mut self) -> Option<Self::Item> {
        let mut rec = ShardRecord::default();
        match self.read_into(&mut rec) {
            Ok(true) => Some(Ok(Page {
                id: rec.id,
                site: rec.site,
                url: rec.url,
                kind: rec.kind,
                text: rec.text,
            })),
            Ok(false) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

/// Reused decode target for [`PageShardReader::read_into`].
#[derive(Debug, Clone)]
pub struct ShardRecord {
    /// Global page id.
    pub id: PageId,
    /// Hosting site.
    pub site: SiteId,
    /// Page class.
    pub kind: PageKind,
    /// Page URL, in a reused buffer.
    pub url: String,
    /// Page text, in a reused buffer.
    pub text: String,
}

impl Default for ShardRecord {
    fn default() -> Self {
        ShardRecord {
            id: PageId::new(0),
            site: SiteId::new(0),
            kind: PageKind::Listing,
            url: String::new(),
            text: String::new(),
        }
    }
}

/// A directory of shard files (`shard-00000.wsp`, `shard-00001.wsp`, …)
/// covering a whole web in site order.
#[derive(Debug, Clone)]
pub struct ShardStore {
    dir: PathBuf,
    shards: Vec<PathBuf>,
}

impl ShardStore {
    fn shard_path(dir: &Path, i: usize) -> PathBuf {
        dir.join(format!("shard-{i:05}.wsp"))
    }

    /// Render every page of `web` into shard files under `dir` (created
    /// if missing), cutting shards per [`plan_shards`] with
    /// `target_bytes` estimated payload each. Peak memory is one page of
    /// scratch — records stream straight to disk.
    ///
    /// # Errors
    /// Propagates file-system errors.
    pub fn write(
        dir: &Path,
        web: &Web,
        catalog: &EntityCatalog,
        config: &PageConfig,
        seed: Seed,
        target_bytes: u64,
    ) -> Result<ShardStore, ShardError> {
        std::fs::create_dir_all(dir)?;
        let specs = plan_shards(web, config, target_bytes);
        let mut shards = Vec::with_capacity(specs.len());
        let mut scratch = PageScratch::default();
        let mut url = String::new();
        for (i, spec) in specs.iter().enumerate() {
            let path = Self::shard_path(dir, i);
            let mut writer = PageShardWriter::new(BufWriter::new(File::create(&path)?));
            let mut stream = PageStream::for_site_range(
                web,
                catalog,
                config.clone(),
                seed,
                spec.sites.clone(),
                spec.first_page,
            );
            while stream.render_into(&mut scratch) {
                url.clear();
                scratch.url_into(&mut url);
                writer.push(scratch.id(), scratch.site(), scratch.kind(), &url, scratch.text())?;
            }
            writer.finish()?;
            shards.push(path);
        }
        Ok(ShardStore {
            dir: dir.to_path_buf(),
            shards,
        })
    }

    /// Open an existing store: every `shard-*.wsp` under `dir`, in name
    /// (= site) order. Headers are *not* validated here — each shard is
    /// checked when opened for reading.
    ///
    /// # Errors
    /// Propagates directory-listing errors.
    pub fn open(dir: &Path) -> Result<ShardStore, ShardError> {
        let mut shards = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("shard-") && name.ends_with(".wsp") {
                shards.push(path);
            }
        }
        shards.sort();
        Ok(ShardStore {
            dir: dir.to_path_buf(),
            shards,
        })
    }

    /// Directory the store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shard files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the store has no shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Paths of the shard files, in site order.
    #[must_use]
    pub fn paths(&self) -> &[PathBuf] {
        &self.shards
    }

    /// Open shard `i` for reading (validates header + checksum).
    ///
    /// # Errors
    /// See [`PageShardReader::open`].
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn reader(&self, i: usize) -> Result<PageShardReader<BufReader<File>>, ShardError> {
        PageShardReader::open_path(&self.shards[i])
    }
}

/// A web that arrives shard-by-shard: either rendered on the fly from a
/// [`Web`] (no disk at all — peak memory is one page) or read back from a
/// [`ShardStore`] (peak memory is one record). Both sources yield the same
/// page bytes in the same order, which is what makes the streamed
/// pipeline's output byte-identical to the in-memory path.
pub enum ShardedWeb<'a> {
    /// Render pages directly from the generative model.
    Rendered {
        /// The site→mention relation.
        web: &'a Web,
        /// Entity catalog pages render against.
        catalog: &'a EntityCatalog,
        /// Rendering parameters.
        config: PageConfig,
        /// Corpus seed.
        seed: Seed,
        /// Shard cuts (from [`plan_shards`]).
        specs: Vec<ShardSpec>,
    },
    /// Read pages back from shard files.
    Stored(&'a ShardStore),
}

impl<'a> ShardedWeb<'a> {
    /// Sharded view of `web` rendered on the fly with default-size shards.
    #[must_use]
    pub fn rendered(
        web: &'a Web,
        catalog: &'a EntityCatalog,
        config: PageConfig,
        seed: Seed,
    ) -> Self {
        let specs = plan_shards(web, &config, DEFAULT_SHARD_BYTES);
        ShardedWeb::Rendered {
            web,
            catalog,
            config,
            seed,
            specs,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        match self {
            ShardedWeb::Rendered { specs, .. } => specs.len(),
            ShardedWeb::Stored(store) => store.len(),
        }
    }

    /// Stream every page of shard `i` through `f`, reusing one scratch
    /// record. This is the out-of-core workhorse: callers fold pages into
    /// an accumulator and never see more than one page in memory.
    ///
    /// # Errors
    /// Disk-backed shards can fail validation; rendered shards cannot.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn for_each_page(
        &self,
        i: usize,
        mut f: impl FnMut(PageId, SiteId, PageKind, &str),
    ) -> Result<u64, ShardError> {
        let mut bytes = 0u64;
        match self {
            ShardedWeb::Rendered {
                web,
                catalog,
                config,
                seed,
                specs,
            } => {
                let spec = &specs[i];
                let mut stream = PageStream::for_site_range(
                    web,
                    catalog,
                    config.clone(),
                    *seed,
                    spec.sites.clone(),
                    spec.first_page,
                );
                let mut scratch = PageScratch::default();
                while stream.render_into(&mut scratch) {
                    bytes += scratch.text().len() as u64;
                    f(scratch.id(), scratch.site(), scratch.kind(), scratch.text());
                }
            }
            ShardedWeb::Stored(store) => {
                let mut reader = store.reader(i)?;
                let mut rec = ShardRecord::default();
                while reader.read_into(&mut rec)? {
                    bytes += rec.text.len() as u64;
                    f(rec.id, rec.site, rec.kind, &rec.text);
                }
            }
        }
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::entity::CatalogConfig;
    use crate::web::WebConfig;
    use std::io::Cursor;

    fn tiny_setup() -> (EntityCatalog, Web) {
        let catalog =
            EntityCatalog::generate(&CatalogConfig::new(Domain::Restaurants, 300), Seed(21));
        let config = WebConfig::preset(Domain::Restaurants).scaled(0.01);
        let web = Web::generate(&catalog, &config, Seed(21));
        (catalog, web)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "webstruct-shard-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn plan_covers_every_site_once_with_prefix_page_ids() {
        let (_, web) = tiny_setup();
        let cfg = PageConfig::default();
        for target in [1u64, 50_000, u64::MAX] {
            let specs = plan_shards(&web, &cfg, target);
            assert!(!specs.is_empty());
            let mut next_site = 0usize;
            let mut next_page = 0u32;
            for s in &specs {
                assert_eq!(s.sites.start, next_site);
                assert_eq!(s.first_page, next_page);
                let pages: u32 = s
                    .sites
                    .clone()
                    .map(|i| PageStream::site_page_count(&web, &cfg, i))
                    .sum();
                assert_eq!(s.page_count, pages);
                next_site = s.sites.end;
                next_page += pages;
            }
            assert_eq!(next_site, web.n_sites());
        }
        // target=MAX puts everything in one shard.
        assert_eq!(plan_shards(&web, &cfg, u64::MAX).len(), 1);
    }

    #[test]
    fn estimated_bytes_rank_sites_like_rendered_bytes() {
        let (catalog, web) = tiny_setup();
        let cfg = PageConfig::default();
        // Actual rendered bytes per site.
        let mut actual = vec![0u64; web.n_sites()];
        for p in PageStream::new(&web, &catalog, cfg.clone(), Seed(3)) {
            actual[p.site.index()] += p.text.len() as u64;
        }
        let est: Vec<u64> = (0..web.n_sites())
            .map(|i| PageStream::estimated_site_bytes(&web, &cfg, i))
            .collect();
        // The estimate must put the true largest site within its top 3.
        let argmax = |v: &[u64]| (0..v.len()).max_by_key(|&i| v[i]).unwrap();
        let mut est_rank: Vec<usize> = (0..est.len()).collect();
        est_rank.sort_by_key(|&i| std::cmp::Reverse(est[i]));
        assert!(
            est_rank[..3].contains(&argmax(&actual)),
            "largest real site not in top-3 estimates"
        );
        // And sites with zero mentions estimate to zero.
        for i in 0..web.n_sites() {
            if web.mentions_of(web.sites[i].id).is_empty() {
                assert_eq!(est[i], 0);
            }
        }
    }

    #[test]
    fn shard_roundtrip_is_byte_identical() {
        let (catalog, web) = tiny_setup();
        let cfg = PageConfig::default();
        let dir = tmpdir("roundtrip");
        let store = ShardStore::write(&dir, &web, &catalog, &cfg, Seed(3), 64 * 1024)
            .expect("write shards");
        assert!(store.len() > 1, "fixture should cut multiple shards");
        let direct: Vec<Page> = PageStream::new(&web, &catalog, cfg, Seed(3)).collect();
        let mut from_disk: Vec<Page> = Vec::new();
        for i in 0..store.len() {
            for page in store.reader(i).expect("open shard") {
                from_disk.push(page.expect("read record"));
            }
        }
        assert_eq!(direct.len(), from_disk.len());
        for (a, b) in direct.iter().zip(&from_disk) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.site, b.site);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.url, b.url);
            assert_eq!(a.text, b.text, "page {} text diverged", a.id.raw());
        }
        // Re-open via directory listing finds the same shards.
        let reopened = ShardStore::open(&dir).expect("open store");
        assert_eq!(reopened.paths(), store.paths());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_fields_describe_the_shard() {
        let (catalog, web) = tiny_setup();
        let cfg = PageConfig::default();
        let dir = tmpdir("header");
        let store =
            ShardStore::write(&dir, &web, &catalog, &cfg, Seed(3), 64 * 1024).expect("write");
        let specs = plan_shards(&web, &cfg, 64 * 1024);
        assert_eq!(store.len(), specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let r = store.reader(i).expect("open");
            let h = r.header();
            assert_eq!(h.page_count, spec.page_count);
            assert_eq!(h.first_page, spec.first_page);
            assert!(h.site_lo as usize >= spec.sites.start);
            assert!(h.site_hi as usize <= spec.sites.end);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_shards_are_rejected() {
        let (catalog, web) = tiny_setup();
        let cfg = PageConfig::default();
        let dir = tmpdir("corrupt");
        let store =
            ShardStore::write(&dir, &web, &catalog, &cfg, Seed(3), u64::MAX).expect("write");
        let path = &store.paths()[0];
        let clean = std::fs::read(path).expect("read shard bytes");
        assert!(clean.len() > SHARD_HEADER_LEN + 64);

        // Bad magic.
        let mut bad = clean.clone();
        bad[0] = b'X';
        assert!(matches!(
            PageShardReader::open(Cursor::new(&bad[..])),
            Err(ShardError::BadMagic(_))
        ));
        // Bad version.
        let mut bad = clean.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            PageShardReader::open(Cursor::new(&bad[..])),
            Err(ShardError::BadVersion(99))
        ));
        // Flipped payload byte → checksum mismatch.
        let mut bad = clean.clone();
        let k = SHARD_HEADER_LEN + 40;
        bad[k] ^= 0x5a;
        assert!(matches!(
            PageShardReader::open(Cursor::new(&bad[..])),
            Err(ShardError::ChecksumMismatch)
        ));
        // Flipped checksum byte → also a mismatch.
        let mut bad = clean.clone();
        bad[33] ^= 0x5a;
        assert!(matches!(
            PageShardReader::open(Cursor::new(&bad[..])),
            Err(ShardError::ChecksumMismatch)
        ));
        // Truncated payload.
        let cut = &clean[..clean.len() - 17];
        assert!(matches!(
            PageShardReader::open(Cursor::new(cut)),
            Err(ShardError::Truncated { .. })
        ));
        // Truncated header.
        assert!(matches!(
            PageShardReader::open(Cursor::new(&clean[..10])),
            Err(ShardError::Truncated { .. })
        ));
        // The untouched file still opens.
        assert!(PageShardReader::open(Cursor::new(&clean[..])).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_shard_roundtrips() {
        let mut buf = Cursor::new(Vec::new());
        let w = PageShardWriter::new(&mut buf);
        let h = w.finish().expect("finish empty");
        assert_eq!(h.page_count, 0);
        assert_eq!(h.payload_len, 0);
        let bytes = buf.into_inner();
        let mut r = PageShardReader::open(Cursor::new(&bytes[..])).expect("open empty");
        let mut rec = ShardRecord::default();
        assert!(!r.read_into(&mut rec).expect("read"));
    }

    #[test]
    fn sharded_web_rendered_and_stored_agree() {
        let (catalog, web) = tiny_setup();
        let cfg = PageConfig::default();
        let dir = tmpdir("agree");
        let store = ShardStore::write(&dir, &web, &catalog, &cfg, Seed(3), 64 * 1024)
            .expect("write shards");
        let rendered = {
            let specs = plan_shards(&web, &cfg, 64 * 1024);
            ShardedWeb::Rendered {
                web: &web,
                catalog: &catalog,
                config: cfg.clone(),
                seed: Seed(3),
                specs,
            }
        };
        let stored = ShardedWeb::Stored(&store);
        assert_eq!(rendered.n_shards(), stored.n_shards());
        for i in 0..rendered.n_shards() {
            let mut a = Vec::new();
            let ab = rendered
                .for_each_page(i, |id, site, kind, text| {
                    a.push((id, site, kind, text.to_owned()));
                })
                .expect("rendered shard");
            let mut b = Vec::new();
            let bb = stored
                .for_each_page(i, |id, site, kind, text| {
                    b.push((id, site, kind, text.to_owned()));
                })
                .expect("stored shard");
            assert_eq!(a, b, "shard {i} diverged");
            assert_eq!(ab, bb);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
