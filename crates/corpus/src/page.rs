//! Page materialisation: turning the site→mention relation into concrete
//! web pages with real text.
//!
//! Pages are rendered lazily and deterministically — page `i` has the same
//! bytes on every iteration of the stream — so full-corpus extraction runs
//! never need to hold the rendered web in memory.

use crate::domain::Attribute;
use crate::entity::EntityCatalog;
use crate::phone::PhoneFormat;
use crate::site::SiteKind;
use crate::text;
use crate::web::Web;
use std::collections::VecDeque;
use webstruct_util::ids::{PageId, SiteId};
use webstruct_util::rng::{Seed, Xoshiro256};

/// What a page is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// A listing/directory page mentioning one or more entities.
    Listing,
    /// A page of user reviews for a single entity.
    Review,
}

/// One rendered page.
#[derive(Debug, Clone)]
pub struct Page {
    /// Global page id, dense over the stream.
    pub id: PageId,
    /// The site hosting the page.
    pub site: SiteId,
    /// Page URL.
    pub url: String,
    /// Page class.
    pub kind: PageKind,
    /// Rendered text (HTML-lite).
    pub text: String,
}

/// How a page's URL is derived from its identity — enough to render the
/// URL string on demand, so extraction-only streams (which never read the
/// URL) skip building it entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UrlTail {
    /// `http://{host}/list/{page_id}`.
    Listing,
    /// `http://{host}/reviews/{entity}/{page_no}`.
    Review {
        /// Raw entity id in the URL path.
        entity: u32,
        /// Review page ordinal in the URL path.
        page_no: u32,
    },
}

/// Reusable per-worker rendering target: [`PageStream::render_into`]
/// writes each page's text into the same buffers, so steady-state
/// rendering performs no heap allocation. The URL is *not* materialised —
/// [`PageScratch::url`] renders it on demand for the few consumers
/// (crawl, index, tests) that need one.
#[derive(Debug, Clone)]
pub struct PageScratch {
    id: PageId,
    site: SiteId,
    kind: PageKind,
    /// Host of the owning site, copied into a reused buffer.
    host: String,
    url_tail: UrlTail,
    /// Rendered text (HTML-lite), in a reused buffer.
    text: String,
}

impl Default for PageScratch {
    fn default() -> Self {
        PageScratch {
            id: PageId::new(0),
            site: SiteId::new(0),
            kind: PageKind::Listing,
            host: String::new(),
            url_tail: UrlTail::Listing,
            text: String::new(),
        }
    }
}

impl PageScratch {
    /// Scratch whose text buffer starts at `text_bytes` capacity. A
    /// default scratch reaches the same steady state by doubling, but
    /// pays one reallocation-and-copy per doubling step on the way up;
    /// callers that know the expected page size (e.g. from a previously
    /// rendered page) skip that ladder entirely.
    #[must_use]
    pub fn with_capacity(text_bytes: usize) -> Self {
        PageScratch {
            // Hosts are short ("pages.example-word.com"); 48 bytes covers
            // every generated host without a resize.
            host: String::with_capacity(48),
            text: String::with_capacity(text_bytes),
            ..PageScratch::default()
        }
    }

    /// Global page id of the most recently rendered page.
    #[must_use]
    pub fn id(&self) -> PageId {
        self.id
    }

    /// Site hosting the most recently rendered page.
    #[must_use]
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Class of the most recently rendered page.
    #[must_use]
    pub fn kind(&self) -> PageKind {
        self.kind
    }

    /// Rendered text of the most recently rendered page.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Render the page URL on demand (allocates — off the hot path).
    #[must_use]
    pub fn url(&self) -> String {
        let mut out = String::with_capacity(self.host.len() + 24);
        self.url_into(&mut out);
        out
    }

    /// Append the page URL to `out` without allocating.
    pub fn url_into(&self, out: &mut String) {
        use std::fmt::Write;
        match self.url_tail {
            UrlTail::Listing => write!(out, "http://{}/list/{}", self.host, self.id.raw()),
            UrlTail::Review { entity, page_no } => {
                write!(out, "http://{}/reviews/{entity}/{page_no}", self.host)
            }
        }
        .expect("write to String");
    }

    /// Convert into an owned [`Page`] (materialises the URL). This is the
    /// compatibility bridge for consumers that keep pages around.
    #[must_use]
    pub fn into_page(self) -> Page {
        let url = self.url();
        Page {
            id: self.id,
            site: self.site,
            url,
            kind: self.kind,
            text: self.text,
        }
    }
}

/// Rendering parameters.
#[derive(Debug, Clone)]
pub struct PageConfig {
    /// Entities per directory page on aggregators.
    pub agg_listing_chunk: usize,
    /// Entities per page on regional/niche sites.
    pub tail_listing_chunk: usize,
    /// Probability a listing page carries an invalid phone-lookalike.
    pub noise_phone_rate: f64,
    /// Expected number of *valid-format* random phone numbers injected per
    /// listing page (Poisson). These are the §3.5 accidental-collision
    /// hazard: they scan as phones and may collide with catalog entries.
    pub noise_valid_phone_rate: f64,
    /// Probability a listing page carries a long tracking number.
    pub noise_tracking_rate: f64,
    /// Probability a listing page carries an unrelated anchor.
    pub noise_anchor_rate: f64,
    /// Boilerplate sentences per page: uniform in `[min, max]`.
    pub boilerplate_min: usize,
    /// See `boilerplate_min`.
    pub boilerplate_max: usize,
}

impl Default for PageConfig {
    fn default() -> Self {
        PageConfig {
            agg_listing_chunk: 25,
            tail_listing_chunk: 4,
            noise_phone_rate: 0.15,
            noise_valid_phone_rate: 0.0,
            noise_tracking_rate: 0.10,
            noise_anchor_rate: 0.25,
            boilerplate_min: 2,
            boilerplate_max: 5,
        }
    }
}

/// A planned page before rendering.
#[derive(Debug, Clone, Copy)]
enum PagePlan {
    /// Mentions `[start, end)` of the current site on one directory page.
    Listing { start: u32, end: u32 },
    /// Review page `page_no` for the mention at index `mention`.
    Review { mention: u32, page_no: u32 },
}

/// Lazy, deterministic iterator over all pages of a [`Web`].
pub struct PageStream<'a> {
    web: &'a Web,
    catalog: &'a EntityCatalog,
    config: PageConfig,
    seed: Seed,
    site_cursor: usize,
    site_end: usize,
    plans: VecDeque<PagePlan>,
    next_page: u32,
    /// Scratch-local render counters — plain integers on the hot path,
    /// published to the global `corpus.*` metrics once, on drop.
    pages_rendered: u64,
    bytes_rendered: u64,
    /// Largest page rendered so far; sizes the fresh scratch the owned
    /// iterator path allocates per page (see [`PageScratch::with_capacity`]).
    text_high_water: usize,
}

impl<'a> PageStream<'a> {
    /// Create a stream over every page of the web.
    #[must_use]
    pub fn new(web: &'a Web, catalog: &'a EntityCatalog, config: PageConfig, seed: Seed) -> Self {
        let site_end = web.n_sites();
        PageStream {
            web,
            catalog,
            config,
            seed: seed.derive("pages"),
            site_cursor: 0,
            site_end,
            plans: VecDeque::new(),
            next_page: 0,
            pages_rendered: 0,
            bytes_rendered: 0,
            text_high_water: 0,
        }
    }

    /// Create a stream over the pages of sites `[sites.start, sites.end)`
    /// only, numbering them from `first_page`.
    ///
    /// Page rendering is a pure function of `(seed, page id)`, and the full
    /// stream assigns dense page ids in site order — so when `first_page`
    /// equals the number of pages contributed by sites `0..sites.start`
    /// (see [`PageStream::site_page_count`]), this shard yields bytes
    /// identical to the corresponding slice of [`PageStream::new`]. That is
    /// the determinism contract the parallel extraction path relies on.
    ///
    /// # Panics
    /// Panics when the range extends past `web.n_sites()`.
    #[must_use]
    pub fn for_site_range(
        web: &'a Web,
        catalog: &'a EntityCatalog,
        config: PageConfig,
        seed: Seed,
        sites: std::ops::Range<usize>,
        first_page: u32,
    ) -> Self {
        assert!(
            sites.end <= web.n_sites(),
            "site range {sites:?} exceeds {} sites",
            web.n_sites()
        );
        PageStream {
            web,
            catalog,
            config,
            seed: seed.derive("pages"),
            site_cursor: sites.start,
            site_end: sites.end,
            plans: VecDeque::new(),
            next_page: first_page,
            pages_rendered: 0,
            bytes_rendered: 0,
            text_high_water: 0,
        }
    }

    /// Number of pages site `site_idx` contributes to the stream: its
    /// listing chunks plus one review page per `reviews_per_page` reviews.
    ///
    /// Mirrors the planning logic exactly, so prefix sums of this count
    /// give each site's first global page id.
    ///
    /// # Panics
    /// Panics when `site_idx` is out of range.
    #[must_use]
    pub fn site_page_count(web: &Web, config: &PageConfig, site_idx: usize) -> u32 {
        let site = &web.sites[site_idx];
        let mentions = web.mentions_of(site.id);
        if mentions.is_empty() {
            return 0;
        }
        let chunk = match site.kind {
            SiteKind::Aggregator => config.agg_listing_chunk,
            SiteKind::Regional | SiteKind::Niche => config.tail_listing_chunk,
        }
        .max(1);
        let listings = mentions.len().div_ceil(chunk) as u32;
        let rpp = web.reviews_per_page() as u32;
        let reviews: u32 = mentions
            .iter()
            .filter(|m| m.reviews > 0)
            .map(|m| u32::from(m.reviews).div_ceil(rpp))
            .sum();
        listings + reviews
    }

    /// Estimated rendered byte-size of site `site_idx`'s pages, from the
    /// same counts [`PageStream::site_page_count`] uses — no rendering.
    ///
    /// The coefficients are a coarse linear model of the renderer (page
    /// chrome ≈ 300 B, each mention block ≈ 80 B, each review ≈ 130 B).
    /// The estimate only has to *rank* sites for the size-aware scheduler
    /// and shard planner, so being off by a constant factor is harmless;
    /// being non-monotone in actual size is what would hurt.
    ///
    /// # Panics
    /// Panics when `site_idx` is out of range.
    #[must_use]
    pub fn estimated_site_bytes(web: &Web, config: &PageConfig, site_idx: usize) -> u64 {
        let site = &web.sites[site_idx];
        let mentions = web.mentions_of(site.id);
        if mentions.is_empty() {
            return 0;
        }
        let pages = u64::from(Self::site_page_count(web, config, site_idx));
        let mention_bytes = 80 * mentions.len() as u64;
        let review_bytes: u64 = mentions.iter().map(|m| u64::from(m.reviews) * 130).sum();
        pages * 300 + mention_bytes + review_bytes
    }

    fn plan_site(&mut self, site_idx: usize) {
        let site = &self.web.sites[site_idx];
        let mentions = self.web.mentions_of(site.id);
        if mentions.is_empty() {
            return;
        }
        let chunk = match site.kind {
            SiteKind::Aggregator => self.config.agg_listing_chunk,
            SiteKind::Regional | SiteKind::Niche => self.config.tail_listing_chunk,
        }
        .max(1);
        let mut start = 0u32;
        while (start as usize) < mentions.len() {
            let end = ((start as usize + chunk).min(mentions.len())) as u32;
            self.plans.push_back(PagePlan::Listing { start, end });
            start = end;
        }
        let rpp = self.web.reviews_per_page() as u32;
        for (mi, m) in mentions.iter().enumerate() {
            if m.reviews > 0 {
                let n_pages = u32::from(m.reviews).div_ceil(rpp);
                for page_no in 0..n_pages {
                    self.plans.push_back(PagePlan::Review {
                        mention: mi as u32,
                        page_no,
                    });
                }
            }
        }
    }

    /// Render the next page of the stream into `out`'s reused buffers.
    /// Returns `false` when the stream is exhausted. Steady-state calls
    /// perform no heap allocation (buffers only grow toward the largest
    /// page seen), and the bytes written are identical to the
    /// corresponding [`Page`] of the iterator path.
    pub fn render_into(&mut self, out: &mut PageScratch) -> bool {
        loop {
            if let Some(plan) = self.plans.pop_front() {
                // The plan belongs to the site we most recently planned.
                let site_idx = self.site_cursor - 1;
                self.render_plan_into(site_idx, plan, PageId::new(self.next_page), out);
                self.next_page += 1;
                self.pages_rendered += 1;
                self.bytes_rendered += out.text.len() as u64;
                self.text_high_water = self.text_high_water.max(out.text.len());
                return true;
            }
            if self.site_cursor >= self.site_end {
                return false;
            }
            let idx = self.site_cursor;
            self.site_cursor += 1;
            self.plan_site(idx);
        }
    }

    fn render_plan_into(
        &self,
        site_idx: usize,
        plan: PagePlan,
        page_id: PageId,
        scratch: &mut PageScratch,
    ) {
        use std::fmt::Write;
        let site = &self.web.sites[site_idx];
        let mentions = self.web.mentions_of(site.id);
        // Rendering is a pure function of (seed, page id, site revision):
        // revision 0 keys exactly as before the epoch model existed (so
        // epoch-0 stores are byte-identical to historical ones), and a
        // bumped revision re-keys only this site's pages.
        let rev = self.web.revision(site_idx);
        let page_seed = if rev == 0 {
            self.seed.derive_u64(u64::from(page_id.raw()))
        } else {
            self.seed
                .derive_u64(u64::from(page_id.raw()))
                .derive_u64(u64::from(rev))
        };
        let mut rng = Xoshiro256::from_seed(page_seed);
        scratch.id = page_id;
        scratch.site = site.id;
        scratch.host.clear();
        scratch.host.push_str(&site.host);
        let out = &mut scratch.text;
        out.clear();
        match plan {
            PagePlan::Listing { start, end } => {
                writeln!(out, "<html><title>{} — local listings</title>", site.host)
                    .expect("write to String");
                // Site-wide navigation chrome: identical on every page of
                // the site, which is exactly what wrapper induction learns
                // to discard.
                writeln!(out, "Home | Categories | Contact — {}", site.host)
                    .expect("write to String");
                let nb = rng.range_u64(
                    self.config.boilerplate_min as u64,
                    self.config.boilerplate_max as u64 + 1,
                ) as usize;
                text::boilerplate_block_into(&mut rng, nb, out);
                out.push('\n');
                for m in &mentions[start as usize..end as usize] {
                    let entity = self.catalog.entity(m.entity);
                    writeln!(out, "<h2>{}</h2>", entity.name).expect("write to String");
                    if m.attrs.contains(Attribute::Phone) {
                        let phone = entity.phone.expect("phone attr implies phone");
                        out.push_str("Call ");
                        phone.format_into(PhoneFormat::random(&mut rng), out);
                        out.push_str(".\n");
                    }
                    if m.attrs.contains(Attribute::Isbn) {
                        let isbn = entity.isbn.expect("isbn attr implies isbn");
                        let sep = if rng.bool_with(0.5) { ": " } else { " " };
                        out.push_str("ISBN");
                        out.push_str(sep);
                        isbn.render_random_into(&mut rng, out);
                        out.push('\n');
                    }
                    if m.attrs.contains(Attribute::Homepage) {
                        let host = entity.homepage.as_ref().expect("homepage attr implies url");
                        writeln!(out, "<a href=\"http://{host}/\">{} website</a>", entity.name)
                            .expect("write to String");
                    }
                    if rng.bool_with(0.2) {
                        out.push_str(text::boilerplate_pick(&mut rng));
                        out.push('\n');
                    }
                }
                let n_valid_noise = rng.poisson(self.config.noise_valid_phone_rate);
                for _ in 0..n_valid_noise {
                    out.push_str("Customer service line ");
                    let phone = crate::phone::PhoneNumber::random(&mut rng);
                    phone.format_into(crate::phone::PhoneFormat::random(&mut rng), out);
                    out.push_str(".\n");
                }
                if rng.bool_with(self.config.noise_phone_rate) {
                    out.push_str("Reference code ");
                    text::invalid_phone_lookalike_into(&mut rng, out);
                    out.push_str(".\n");
                }
                if rng.bool_with(self.config.noise_tracking_rate) {
                    text::tracking_number_into(&mut rng, out);
                    out.push('\n');
                }
                if rng.bool_with(self.config.noise_anchor_rate) {
                    text::noise_anchor_into(&mut rng, out);
                    out.push('\n');
                }
                writeln!(out, "(c) {} — all listings are user submitted", site.host)
                    .expect("write to String");
                out.push_str("</html>");
                scratch.kind = PageKind::Listing;
                scratch.url_tail = UrlTail::Listing;
            }
            PagePlan::Review { mention, page_no } => {
                let m = &mentions[mention as usize];
                let entity = self.catalog.entity(m.entity);
                let rpp = self.web.reviews_per_page() as u32;
                let remaining = u32::from(m.reviews) - page_no * rpp;
                let on_page = remaining.min(rpp);
                writeln!(
                    out,
                    "<html><title>Reviews of {} — {}</title>",
                    entity.name, site.host
                )
                .expect("write to String");
                if let Some(phone) = entity.phone {
                    out.push_str("Contact: ");
                    phone.format_into(PhoneFormat::random(&mut rng), out);
                    out.push('\n');
                }
                for _ in 0..on_page {
                    text::review_paragraph_into(&mut rng, &entity.name, out);
                    out.push('\n');
                }
                out.push_str("</html>");
                scratch.kind = PageKind::Review;
                scratch.url_tail = UrlTail::Review {
                    entity: m.entity.raw(),
                    page_no,
                };
            }
        }
    }
}

impl Drop for PageStream<'_> {
    /// Publish this stream's render totals to the global metrics. A
    /// shard stream publishes its own totals, and counter addition is
    /// commutative, so the registry ends at the same values for any
    /// shard count or join order.
    fn drop(&mut self) {
        if self.pages_rendered > 0 {
            let m = webstruct_util::obs::metrics();
            m.add("corpus.pages_rendered", self.pages_rendered);
            m.add("corpus.bytes_streamed", self.bytes_rendered);
        }
    }
}

impl Iterator for PageStream<'_> {
    type Item = Page;

    /// Owned-`Page` compatibility path: renders through a fresh
    /// [`PageScratch`] and materialises the URL. Hot loops should use
    /// [`PageStream::render_into`] instead.
    ///
    /// The fresh scratch is sized to the largest page rendered so far, so
    /// only the first page (and each new high-water page) pays the
    /// grow-by-doubling reallocation ladder.
    fn next(&mut self) -> Option<Page> {
        let mut scratch = PageScratch::with_capacity(self.text_high_water);
        if self.render_into(&mut scratch) {
            Some(scratch.into_page())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::entity::{CatalogConfig, EntityCatalog};
    use crate::web::WebConfig;

    fn tiny_setup(domain: Domain) -> (EntityCatalog, Web) {
        let catalog = EntityCatalog::generate(&CatalogConfig::new(domain, 300), Seed(21));
        let config = WebConfig::preset(domain).scaled(0.01);
        let web = Web::generate(&catalog, &config, Seed(21));
        (catalog, web)
    }

    #[test]
    fn stream_is_deterministic() {
        let (catalog, web) = tiny_setup(Domain::Restaurants);
        let a: Vec<Page> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(3)).collect();
        let b: Vec<Page> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(3)).collect();
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.url, y.url);
        }
        // Different seeds change the rendering.
        let c: Vec<Page> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(4)).collect();
        assert!(a.iter().zip(&c).any(|(x, y)| x.text != y.text));
    }

    #[test]
    fn presized_scratch_renders_identically() {
        let (catalog, web) = tiny_setup(Domain::Restaurants);
        let mut a = PageStream::new(&web, &catalog, PageConfig::default(), Seed(3));
        let mut b = PageStream::new(&web, &catalog, PageConfig::default(), Seed(3));
        let mut cold = PageScratch::default();
        let mut warm = PageScratch::with_capacity(16 * 1024);
        let mut pages = 0usize;
        while a.render_into(&mut cold) {
            assert!(b.render_into(&mut warm));
            assert_eq!(cold.text(), warm.text());
            assert_eq!(cold.url(), warm.url());
            pages += 1;
        }
        assert!(!b.render_into(&mut warm));
        assert!(pages > 100, "fixture too small: {pages} pages");
    }

    #[test]
    fn page_ids_are_dense_and_sites_ordered() {
        let (catalog, web) = tiny_setup(Domain::Banks);
        let pages: Vec<Page> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(3)).collect();
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p.id.index(), i);
        }
        // Site ids are non-decreasing along the stream.
        assert!(pages.windows(2).all(|w| w[0].site <= w[1].site));
    }

    #[test]
    fn every_phone_mention_appears_on_some_page() {
        let (catalog, web) = tiny_setup(Domain::Restaurants);
        let mut expected = std::collections::HashSet::new();
        for (site, m) in web.iter() {
            if m.attrs.contains(Attribute::Phone) {
                expected.insert((site, m.entity));
            }
        }
        let mut found = std::collections::HashSet::new();
        for page in PageStream::new(&web, &catalog, PageConfig::default(), Seed(3)) {
            for m in web.mentions_of(page.site) {
                if m.attrs.contains(Attribute::Phone) {
                    let digits = catalog.entity(m.entity).phone.unwrap();
                    // Cheap containment check: all formats contain the line
                    // number as 4 digits; use the full plain rendering scan.
                    let plain = digits.format(PhoneFormat::Plain);
                    let last4 = &plain[6..];
                    if page.text.contains(last4) {
                        found.insert((page.site, m.entity));
                    }
                }
            }
        }
        // Every (site, entity) phone mention must surface on at least one
        // page of that site.
        for pair in &expected {
            assert!(found.contains(pair), "missing mention {pair:?}");
        }
    }

    #[test]
    fn review_pages_contain_review_language_and_contact() {
        let (catalog, web) = tiny_setup(Domain::Restaurants);
        let pages: Vec<Page> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(3)).collect();
        let review_pages: Vec<&Page> =
            pages.iter().filter(|p| p.kind == PageKind::Review).collect();
        assert!(!review_pages.is_empty(), "restaurants must have review pages");
        for p in review_pages.iter().take(20) {
            assert!(p.text.contains("out of 5 stars"), "no rating in {}", p.url);
            assert!(p.text.contains("Contact:"), "no contact in {}", p.url);
        }
    }

    #[test]
    fn review_page_count_matches_web_accounting() {
        let (catalog, web) = tiny_setup(Domain::Restaurants);
        let pages: Vec<Page> =
            PageStream::new(&web, &catalog, PageConfig::default(), Seed(3)).collect();
        let streamed = pages.iter().filter(|p| p.kind == PageKind::Review).count() as u32;
        let accounted: u32 = web
            .review_page_lists()
            .iter()
            .flat_map(|l| l.iter().map(|&(_, n)| n))
            .sum();
        assert_eq!(streamed, accounted);
    }

    #[test]
    fn books_pages_carry_isbn_with_marker() {
        let (catalog, web) = tiny_setup(Domain::Books);
        let mut saw_isbn = false;
        for page in PageStream::new(&web, &catalog, PageConfig::default(), Seed(3)) {
            if page.text.contains("ISBN") {
                saw_isbn = true;
                break;
            }
        }
        assert!(saw_isbn, "book pages must render ISBN markers");
    }

    #[test]
    fn site_page_counts_match_streamed_pages() {
        let (catalog, web) = tiny_setup(Domain::Restaurants);
        let cfg = PageConfig::default();
        let mut per_site = vec![0u32; web.n_sites()];
        for p in PageStream::new(&web, &catalog, cfg.clone(), Seed(3)) {
            per_site[p.site.index()] += 1;
        }
        for (i, &streamed) in per_site.iter().enumerate() {
            assert_eq!(
                PageStream::site_page_count(&web, &cfg, i),
                streamed,
                "site {i}"
            );
        }
    }

    #[test]
    fn site_range_shards_reproduce_the_full_stream() {
        let (catalog, web) = tiny_setup(Domain::Restaurants);
        let cfg = PageConfig::default();
        let full: Vec<Page> = PageStream::new(&web, &catalog, cfg.clone(), Seed(3)).collect();
        // Split the sites into three uneven shards and re-render.
        let n = web.n_sites();
        let cuts = [0, n / 3, 2 * n / 3 + 1, n];
        let mut sharded: Vec<Page> = Vec::new();
        for w in cuts.windows(2) {
            let first_page: u32 = (0..w[0])
                .map(|i| PageStream::site_page_count(&web, &cfg, i))
                .sum();
            sharded.extend(PageStream::for_site_range(
                &web,
                &catalog,
                cfg.clone(),
                Seed(3),
                w[0]..w[1],
                first_page,
            ));
        }
        assert_eq!(full.len(), sharded.len());
        for (a, b) in full.iter().zip(&sharded) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.url, b.url);
            assert_eq!(a.text, b.text, "page {} diverged", a.id.raw());
        }
    }

    #[test]
    fn render_into_matches_owned_iterator_bytes() {
        let (catalog, web) = tiny_setup(Domain::Books);
        let cfg = PageConfig::default();
        let owned: Vec<Page> = PageStream::new(&web, &catalog, cfg.clone(), Seed(3)).collect();
        let mut stream = PageStream::new(&web, &catalog, cfg, Seed(3));
        let mut scratch = PageScratch::default();
        let mut n = 0usize;
        while stream.render_into(&mut scratch) {
            let p = &owned[n];
            assert_eq!(scratch.id(), p.id);
            assert_eq!(scratch.site(), p.site);
            assert_eq!(scratch.kind(), p.kind);
            assert_eq!(scratch.text(), p.text, "page {n} text diverged");
            assert_eq!(scratch.url(), p.url, "page {n} url diverged");
            let mut url = String::new();
            scratch.url_into(&mut url);
            assert_eq!(url, p.url);
            n += 1;
        }
        assert_eq!(n, owned.len());
    }

    #[test]
    fn listing_chunks_respect_site_kind() {
        let (catalog, web) = tiny_setup(Domain::Restaurants);
        let cfg = PageConfig::default();
        let pages: Vec<Page> = PageStream::new(&web, &catalog, cfg.clone(), Seed(3)).collect();
        for p in pages.iter().filter(|p| p.kind == PageKind::Listing) {
            let entity_count = p.text.matches("<h2>").count();
            let site = &web.sites[p.site.index()];
            let cap = match site.kind {
                SiteKind::Aggregator => cfg.agg_listing_chunk,
                _ => cfg.tail_listing_chunk,
            };
            assert!(entity_count <= cap, "{} entities on {}", entity_count, p.url);
            assert!(entity_count >= 1);
        }
    }
}
