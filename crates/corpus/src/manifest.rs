//! The store-level manifest (`MANIFEST.wsm`): the single source of truth
//! for what a [`ShardStore`](crate::shard::ShardStore) contains.
//!
//! Before this file existed, `ShardStore::open` trusted the directory
//! listing — a torn shard silently joined the store and a deleted one
//! silently shrank the web. The manifest inverts that trust: it is
//! written atomically (tmp → fsync → rename → dir fsync), strictly
//! **after** the shards it lists, and recommitted after every rendered
//! shard — so the manifest on disk always vouches for a complete,
//! fsynced prefix of the plan, and `open` validates coverage and digests
//! against it instead of globbing.
//!
//! ## Format
//!
//! A line-oriented text file, fully deterministic, self-checksummed:
//!
//! ```text
//! WSM1
//! fingerprint <64 hex>                 config/seed fingerprint of the run
//! sites <n_sites>                      site axis the shards must cover
//! shards <n>
//! shard <idx> <file> <site_start> <site_end> <first_page> <page_count> <payload_len> <sha256 hex>
//! ...                                  one line per shard, in site order
//! revs <n>                             OPTIONAL: per-shard revision-slice digests
//! rev <idx> <64 hex>                   ... one per shard (epoch != 0 only)
//! extfp <64 hex>                       OPTIONAL: extractor config fingerprint
//! exts <n>                             ... extraction-cache entries committed so far
//! ext <idx> <file> <payload_len> <sha256 hex>
//! checksum <64 hex>                    SHA-256 of every byte above
//! ```
//!
//! The two optional sections are the incremental-recomputation layer
//! (see `DESIGN.md` §14). Both are omitted when empty, so an epoch-0
//! store with no extraction cache renders byte-identical to the format
//! PR 7 shipped — old manifests parse unchanged, and the durability
//! suite's byte-identity oracles keep holding.
//!
//! * `rev` lines record, per shard, the SHA-256 of the per-site content
//!   revision counters over the shard's planned site range. Recovery
//!   re-derives the expected digest from the current `Web` and re-renders
//!   any shard whose recorded digest disagrees — that is the dirty-set
//!   planner: content-addressed staleness, no timestamps.
//! * `ext` lines vouch for per-shard extraction-cache payloads
//!   (`ext-NNNNN.wse` beside the shards), keyed by the shard's payload
//!   SHA-256 plus the `extfp` extractor fingerprint. An entry is only
//!   trusted when the manifest lists it *and* the cache file's own header
//!   and payload digest agree — a bit-flipped cache entry is recomputed,
//!   never believed.
//!
//! The per-shard `site_start..site_end` is the **planned** range (from
//! [`plan_shards`](crate::shard::plan_shards)), not the observed one in
//! the shard header — sites with no pages still belong to exactly one
//! shard, so planned ranges tile the site axis with no gaps and coverage
//! can be checked without opening a single shard file.

use crate::shard::{ShardError, ShardHeader, ShardSpec};
use std::path::{Path, PathBuf};
use webstruct_util::iofault::FaultSession;
use webstruct_util::sha::Sha256;

/// Manifest file name inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST.wsm";
/// Manifest format magic (first line).
pub const MANIFEST_MAGIC: &str = "WSM1";

/// One shard's line in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Shard file name (relative to the store directory).
    pub file: String,
    /// Planned site range `[start, end)` this shard covers.
    pub sites: std::ops::Range<u32>,
    /// Global id of the shard's first page.
    pub first_page: u32,
    /// Records in the shard payload.
    pub page_count: u32,
    /// Payload bytes after the shard header.
    pub payload_len: u64,
    /// SHA-256 of the shard payload (as stamped in the shard header).
    pub sha256: [u8; 32],
}

impl ManifestEntry {
    /// Build an entry from a planned spec and the header the writer
    /// actually stamped.
    #[must_use]
    pub fn from_parts(file: String, spec: &ShardSpec, header: &ShardHeader) -> Self {
        ManifestEntry {
            file,
            sites: spec.sites.start as u32..spec.sites.end as u32,
            first_page: spec.first_page,
            page_count: spec.page_count,
            payload_len: header.payload_len,
            sha256: header.sha256,
        }
    }

    /// Check a shard header against this entry. Returns the name of the
    /// first mismatching field, or `None` when they agree. Empty shards
    /// skip the `first_page` comparison (the writer stamps 0 when it
    /// never saw a record).
    #[must_use]
    pub fn header_mismatch(&self, header: &ShardHeader) -> Option<&'static str> {
        if header.sha256 != self.sha256 {
            return Some("sha256");
        }
        if header.payload_len != self.payload_len {
            return Some("payload_len");
        }
        if header.page_count != self.page_count {
            return Some("page_count");
        }
        if self.page_count > 0 && header.first_page != self.first_page {
            return Some("first_page");
        }
        if self.page_count > 0
            && (header.site_lo < self.sites.start || header.site_hi > self.sites.end)
        {
            return Some("site_range");
        }
        None
    }
}

/// One extraction-cache entry in the manifest's optional `ext` section:
/// the serialized extraction results for shard `idx`, stored beside the
/// shards as `ext-NNNNN.wse`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtEntry {
    /// Cache file name (relative to the store directory).
    pub file: String,
    /// Payload bytes after the cache file's header.
    pub payload_len: u64,
    /// SHA-256 of the cache payload.
    pub sha256: [u8; 32],
}

/// The manifest's optional extraction-cache section: the extractor
/// fingerprint all entries were produced under, plus one entry slot per
/// shard (`None` = not cached yet; entries commit incrementally through
/// the same atomic-recommit protocol as the shards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtSection {
    /// Fingerprint of the extractor version + config the cached results
    /// were computed with. A store scrubbed or resumed under a different
    /// extractor must not silently reuse these entries.
    pub fingerprint: [u8; 32],
    /// Per-shard cache entries, indexed like `shards`.
    pub entries: Vec<Option<ExtEntry>>,
}

/// Digest of a slice of per-site content revision counters — the
/// content-addressed staleness key for one shard's site range.
#[must_use]
pub fn revision_digest(revisions: &[u32]) -> [u8; 32] {
    let mut sha = Sha256::new();
    sha.update(b"webstruct-shard-revisions-v1\n");
    for r in revisions {
        sha.update(&r.to_le_bytes());
    }
    sha.finalize()
}

/// [`revision_digest`] of `len` all-zero revisions — what a manifest
/// without a `revs` section implicitly records for a shard of `len`
/// sites (epoch 0 predates the section, so absence means "as generated").
#[must_use]
pub fn zero_revision_digest(len: usize) -> [u8; 32] {
    let mut sha = Sha256::new();
    sha.update(b"webstruct-shard-revisions-v1\n");
    for _ in 0..len {
        sha.update(&0u32.to_le_bytes());
    }
    sha.finalize()
}

/// The parsed (or to-be-written) store manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreManifest {
    /// Fingerprint of the `(web, page config, seed, shard target)` the
    /// store was written from; resume refuses to reuse shards across a
    /// fingerprint change.
    pub fingerprint: [u8; 32],
    /// Sites the store must tile, `0..n_sites`.
    pub n_sites: u32,
    /// Per-shard entries, in site order.
    pub shards: Vec<ManifestEntry>,
    /// Per-shard revision-slice digests ([`revision_digest`] over the
    /// shard's planned site range). Empty = every site at revision 0.
    /// When non-empty, the length always equals `shards.len()`.
    pub revs: Vec<[u8; 32]>,
    /// Extraction-cache section, when any entry has been committed.
    pub ext: Option<ExtSection>,
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex32(s: &str) -> Option<[u8; 32]> {
    if s.len() != 64 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let mut out = [0u8; 32];
    for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
        let hi = (chunk[0] as char).to_digit(16)?;
        let lo = (chunk[1] as char).to_digit(16)?;
        out[i] = ((hi << 4) | lo) as u8;
    }
    Some(out)
}

impl StoreManifest {
    /// Render the manifest, checksum line included.
    #[must_use]
    pub fn render(&self) -> String {
        let mut body = String::new();
        body.push_str(MANIFEST_MAGIC);
        body.push('\n');
        body.push_str(&format!("fingerprint {}\n", hex(&self.fingerprint)));
        body.push_str(&format!("sites {}\n", self.n_sites));
        body.push_str(&format!("shards {}\n", self.shards.len()));
        for (i, e) in self.shards.iter().enumerate() {
            body.push_str(&format!(
                "shard {i} {} {} {} {} {} {} {}\n",
                e.file,
                e.sites.start,
                e.sites.end,
                e.first_page,
                e.page_count,
                e.payload_len,
                hex(&e.sha256),
            ));
        }
        if !self.revs.is_empty() {
            body.push_str(&format!("revs {}\n", self.revs.len()));
            for (i, d) in self.revs.iter().enumerate() {
                body.push_str(&format!("rev {i} {}\n", hex(d)));
            }
        }
        if let Some(ext) = &self.ext {
            body.push_str(&format!("extfp {}\n", hex(&ext.fingerprint)));
            let present = ext.entries.iter().flatten().count();
            body.push_str(&format!("exts {present}\n"));
            for (i, e) in ext.entries.iter().enumerate() {
                if let Some(e) = e {
                    body.push_str(&format!(
                        "ext {i} {} {} {}\n",
                        e.file,
                        e.payload_len,
                        hex(&e.sha256),
                    ));
                }
            }
        }
        let mut sha = Sha256::new();
        sha.update(body.as_bytes());
        body.push_str(&format!("checksum {}\n", hex(&sha.finalize())));
        body
    }

    /// Parse a manifest, verifying the trailing checksum.
    ///
    /// # Errors
    /// [`ShardError::ManifestCorrupt`] naming the first malformed piece.
    pub fn parse(text: &str) -> Result<StoreManifest, ShardError> {
        let corrupt = |why: &'static str| ShardError::ManifestCorrupt(why);
        // Split off the checksum line and verify it covers the body.
        let body_end = text
            .rfind("checksum ")
            .ok_or(corrupt("missing checksum line"))?;
        let (body, tail) = text.split_at(body_end);
        let stamp = tail
            .strip_prefix("checksum ")
            .and_then(|s| unhex32(s.trim_end()))
            .ok_or(corrupt("malformed checksum line"))?;
        let mut sha = Sha256::new();
        sha.update(body.as_bytes());
        if sha.finalize() != stamp {
            return Err(corrupt("checksum mismatch"));
        }
        let mut lines = body.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(corrupt("bad magic (want WSM1)"));
        }
        let fingerprint = lines
            .next()
            .and_then(|l| l.strip_prefix("fingerprint "))
            .and_then(unhex32)
            .ok_or(corrupt("malformed fingerprint line"))?;
        let n_sites: u32 = lines
            .next()
            .and_then(|l| l.strip_prefix("sites "))
            .and_then(|s| s.parse().ok())
            .ok_or(corrupt("malformed sites line"))?;
        let n_shards: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("shards "))
            .and_then(|s| s.parse().ok())
            .ok_or(corrupt("malformed shards line"))?;
        let mut shards = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let line = lines.next().ok_or(corrupt("missing shard line"))?;
            let mut parts = line.split(' ');
            if parts.next() != Some("shard") {
                return Err(corrupt("shard line missing prefix"));
            }
            let idx: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(corrupt("shard line bad index"))?;
            if idx != i {
                return Err(corrupt("shard lines out of order"));
            }
            let file = parts
                .next()
                .ok_or(corrupt("shard line missing file"))?
                .to_string();
            let mut num = |why: &'static str| -> Result<u64, ShardError> {
                parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ShardError::ManifestCorrupt(why))
            };
            let site_start = num("shard line bad site_start")? as u32;
            let site_end = num("shard line bad site_end")? as u32;
            let first_page = num("shard line bad first_page")? as u32;
            let page_count = num("shard line bad page_count")? as u32;
            let payload_len = num("shard line bad payload_len")?;
            let sha256 = parts
                .next()
                .and_then(unhex32)
                .ok_or(corrupt("shard line bad sha256"))?;
            if parts.next().is_some() {
                return Err(corrupt("shard line trailing fields"));
            }
            shards.push(ManifestEntry {
                file,
                sites: site_start..site_end,
                first_page,
                page_count,
                payload_len,
                sha256,
            });
        }
        // Optional sections, in fixed order: `revs`, then `extfp`/`exts`.
        let mut revs: Vec<[u8; 32]> = Vec::new();
        let mut ext: Option<ExtSection> = None;
        let mut next = lines.next();
        if let Some(n) = next.and_then(|l| l.strip_prefix("revs ")) {
            let n_revs: usize = n.parse().map_err(|_| corrupt("malformed revs line"))?;
            if n_revs != n_shards {
                return Err(corrupt("revs count disagrees with shards"));
            }
            revs.reserve(n_revs);
            for i in 0..n_revs {
                let line = lines.next().ok_or(corrupt("missing rev line"))?;
                let rest = line.strip_prefix("rev ").ok_or(corrupt("rev line missing prefix"))?;
                let (idx, digest) = rest
                    .split_once(' ')
                    .ok_or(corrupt("rev line missing digest"))?;
                if idx.parse::<usize>().ok() != Some(i) {
                    return Err(corrupt("rev lines out of order"));
                }
                revs.push(unhex32(digest).ok_or(corrupt("rev line bad digest"))?);
            }
            next = lines.next();
        }
        if let Some(fp) = next.and_then(|l| l.strip_prefix("extfp ")) {
            let fingerprint = unhex32(fp).ok_or(corrupt("malformed extfp line"))?;
            let n_ext: usize = lines
                .next()
                .and_then(|l| l.strip_prefix("exts "))
                .and_then(|s| s.parse().ok())
                .ok_or(corrupt("malformed exts line"))?;
            if n_ext > n_shards {
                return Err(corrupt("more ext entries than shards"));
            }
            let mut entries: Vec<Option<ExtEntry>> = vec![None; n_shards];
            let mut last_idx = None;
            for _ in 0..n_ext {
                let line = lines.next().ok_or(corrupt("missing ext line"))?;
                let mut parts = line.split(' ');
                if parts.next() != Some("ext") {
                    return Err(corrupt("ext line missing prefix"));
                }
                let idx: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(corrupt("ext line bad index"))?;
                if idx >= n_shards || last_idx.is_some_and(|l| idx <= l) {
                    return Err(corrupt("ext lines out of order"));
                }
                last_idx = Some(idx);
                let file = parts
                    .next()
                    .ok_or(corrupt("ext line missing file"))?
                    .to_string();
                let payload_len: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(corrupt("ext line bad payload_len"))?;
                let sha256 = parts
                    .next()
                    .and_then(unhex32)
                    .ok_or(corrupt("ext line bad sha256"))?;
                if parts.next().is_some() {
                    return Err(corrupt("ext line trailing fields"));
                }
                entries[idx] = Some(ExtEntry {
                    file,
                    payload_len,
                    sha256,
                });
            }
            ext = Some(ExtSection {
                fingerprint,
                entries,
            });
            next = lines.next();
        }
        if next.is_some() {
            return Err(corrupt("trailing lines after shard list"));
        }
        Ok(StoreManifest {
            fingerprint,
            n_sites,
            shards,
            revs,
            ext,
        })
    }

    /// The revision-slice digest the manifest records for shard `i` — the
    /// stored digest when a `revs` section is present, else the implicit
    /// all-zero digest for a shard of `spec_sites` sites.
    ///
    /// # Panics
    /// Panics when a `revs` section is present but `i` is out of range.
    #[must_use]
    pub fn rev_digest(&self, i: usize, spec_sites: usize) -> [u8; 32] {
        if self.revs.is_empty() {
            zero_revision_digest(spec_sites)
        } else {
            self.revs[i]
        }
    }

    /// Path of the manifest inside `dir`.
    #[must_use]
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_NAME)
    }

    /// Load and parse `dir`'s manifest.
    ///
    /// # Errors
    /// [`ShardError::ManifestMissing`] when the file does not exist;
    /// parse errors otherwise.
    pub fn load(dir: &Path) -> Result<StoreManifest, ShardError> {
        let path = Self::path_in(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ShardError::ManifestMissing)
            }
            Err(e) => return Err(ShardError::Io(e)),
        };
        Self::parse(&text)
    }

    /// Write the manifest crash-safely under `dir`: stream to
    /// `MANIFEST.wsm.tmp`, fsync, rename over the final name, fsync the
    /// directory. All four steps go through `session` so the torture
    /// sweep can crash inside any of them.
    ///
    /// # Errors
    /// Propagates injected or real I/O failures (the temp file is
    /// removed on the error path).
    pub fn write_atomic(&self, dir: &Path, session: &FaultSession) -> Result<(), ShardError> {
        use std::io::Write as _;
        let final_path = Self::path_in(dir);
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        let guard = crate::shard::TempFileGuard::new(tmp.clone());
        let mut file = session.create(&tmp)?;
        file.write_all(self.render().as_bytes())?;
        file.sync_all()?;
        drop(file);
        session.rename(&tmp, &final_path)?;
        guard.disarm();
        session.sync_dir(dir)?;
        Ok(())
    }

    /// Validate that the shard entries tile `0..n_sites` contiguously.
    ///
    /// # Errors
    /// [`ShardError::Gap`] at the first discontinuity (a store that
    /// starts late, skips sites between shards, or ends early).
    pub fn validate_coverage(&self) -> Result<(), ShardError> {
        let mut expected = 0u32;
        for e in &self.shards {
            if e.sites.start != expected {
                return Err(ShardError::Gap {
                    expected_site: expected,
                    found_site: e.sites.start,
                });
            }
            if e.sites.end < e.sites.start {
                return Err(ShardError::ManifestCorrupt("shard site range inverted"));
            }
            expected = e.sites.end;
        }
        if expected != self.n_sites {
            return Err(ShardError::Gap {
                expected_site: self.n_sites,
                found_site: expected,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoreManifest {
        StoreManifest {
            fingerprint: [7u8; 32],
            n_sites: 10,
            shards: vec![
                ManifestEntry {
                    file: "shard-00000.wsp".into(),
                    sites: 0..4,
                    first_page: 0,
                    page_count: 120,
                    payload_len: 4096,
                    sha256: [1u8; 32],
                },
                ManifestEntry {
                    file: "shard-00001.wsp".into(),
                    sites: 4..10,
                    first_page: 120,
                    page_count: 80,
                    payload_len: 2048,
                    sha256: [2u8; 32],
                },
            ],
            revs: Vec::new(),
            ext: None,
        }
    }

    fn sample_with_sections() -> StoreManifest {
        let mut m = sample();
        m.revs = vec![[3u8; 32], [4u8; 32]];
        m.ext = Some(ExtSection {
            fingerprint: [5u8; 32],
            entries: vec![
                None,
                Some(ExtEntry {
                    file: "ext-00001.wse".into(),
                    payload_len: 512,
                    sha256: [6u8; 32],
                }),
            ],
        });
        m
    }

    #[test]
    fn render_parse_roundtrip() {
        let m = sample();
        let text = m.render();
        let back = StoreManifest::parse(&text).expect("parse");
        assert_eq!(back, m);
    }

    #[test]
    fn optional_sections_roundtrip() {
        let m = sample_with_sections();
        let text = m.render();
        let back = StoreManifest::parse(&text).expect("parse with sections");
        assert_eq!(back, m);
        // Flipping any byte of the sectioned manifest is still caught.
        let bytes = text.as_bytes();
        for pos in [0usize, bytes.len() / 3, bytes.len() / 2, bytes.len() - 10] {
            let mut bad = bytes.to_vec();
            bad[pos] ^= 0x01;
            if let Ok(s) = String::from_utf8(bad) {
                assert!(StoreManifest::parse(&s).is_err(), "flip at {pos} unnoticed");
            }
        }
    }

    #[test]
    fn empty_sections_render_the_pr7_bytes() {
        // An epoch-0 store with no extraction cache must be byte-identical
        // to the pre-incremental format: no revs/extfp/exts lines at all.
        let text = sample().render();
        assert!(!text.contains("revs "));
        assert!(!text.contains("extfp "));
        assert!(!text.contains("exts "));
    }

    #[test]
    fn rev_digest_defaults_to_all_zero_slice() {
        let m = sample();
        assert_eq!(m.rev_digest(0, 4), revision_digest(&[0u32; 4]));
        assert_eq!(m.rev_digest(1, 6), zero_revision_digest(6));
        let m = sample_with_sections();
        assert_eq!(m.rev_digest(0, 4), [3u8; 32]);
        // A mutated slice digests differently from the zero slice.
        assert_ne!(revision_digest(&[0, 1, 0, 0]), zero_revision_digest(4));
    }

    #[test]
    fn any_flipped_byte_fails_the_checksum_or_parse() {
        let text = sample().render();
        let bytes = text.as_bytes();
        // Flip a byte in every line (not exhaustive over offsets to keep
        // the test fast, but covering each structural region).
        for pos in [0usize, 6, 40, 80, bytes.len() / 2, bytes.len() - 10] {
            let mut bad = bytes.to_vec();
            bad[pos] ^= 0x01;
            if let Ok(s) = String::from_utf8(bad) {
                assert!(
                    StoreManifest::parse(&s).is_err(),
                    "flip at {pos} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn truncated_manifest_is_rejected() {
        let text = sample().render();
        for cut in [5, 40, text.len() - 5] {
            assert!(StoreManifest::parse(&text[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn coverage_gaps_are_named() {
        let mut m = sample();
        m.shards[1].sites = 5..10; // hole: site 4 unowned
        match m.validate_coverage() {
            Err(ShardError::Gap {
                expected_site: 4,
                found_site: 5,
            }) => {}
            other => panic!("want Gap(4,5), got {other:?}"),
        }
        let mut m = sample();
        m.shards[0].sites = 1..4; // starts late
        assert!(matches!(
            m.validate_coverage(),
            Err(ShardError::Gap {
                expected_site: 0,
                found_site: 1
            })
        ));
        let mut m = sample();
        m.n_sites = 12; // ends early
        assert!(matches!(
            m.validate_coverage(),
            Err(ShardError::Gap {
                expected_site: 12,
                found_site: 10
            })
        ));
        assert!(sample().validate_coverage().is_ok());
    }

    #[test]
    fn header_mismatch_names_the_field() {
        let e = &sample().shards[0];
        let good = ShardHeader {
            page_count: 120,
            first_page: 0,
            site_lo: 0,
            site_hi: 4,
            payload_len: 4096,
            sha256: [1u8; 32],
        };
        assert_eq!(e.header_mismatch(&good), None);
        let mut h = good;
        h.sha256[0] ^= 1;
        assert_eq!(e.header_mismatch(&h), Some("sha256"));
        let mut h = good;
        h.page_count += 1;
        assert_eq!(e.header_mismatch(&h), Some("page_count"));
        let mut h = good;
        h.first_page = 99;
        assert_eq!(e.header_mismatch(&h), Some("first_page"));
        let mut h = good;
        h.site_hi = 7;
        assert_eq!(e.header_mismatch(&h), Some("site_range"));
        let mut h = good;
        h.payload_len = 1;
        assert_eq!(e.header_mismatch(&h), Some("payload_len"));
    }
}
