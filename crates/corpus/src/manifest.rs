//! The store-level manifest (`MANIFEST.wsm`): the single source of truth
//! for what a [`ShardStore`](crate::shard::ShardStore) contains.
//!
//! Before this file existed, `ShardStore::open` trusted the directory
//! listing — a torn shard silently joined the store and a deleted one
//! silently shrank the web. The manifest inverts that trust: it is
//! written atomically (tmp → fsync → rename → dir fsync), strictly
//! **after** the shards it lists, and recommitted after every rendered
//! shard — so the manifest on disk always vouches for a complete,
//! fsynced prefix of the plan, and `open` validates coverage and digests
//! against it instead of globbing.
//!
//! ## Format
//!
//! A line-oriented text file, fully deterministic, self-checksummed:
//!
//! ```text
//! WSM1
//! fingerprint <64 hex>                 config/seed fingerprint of the run
//! sites <n_sites>                      site axis the shards must cover
//! shards <n>
//! shard <idx> <file> <site_start> <site_end> <first_page> <page_count> <payload_len> <sha256 hex>
//! ...                                  one line per shard, in site order
//! checksum <64 hex>                    SHA-256 of every byte above
//! ```
//!
//! The per-shard `site_start..site_end` is the **planned** range (from
//! [`plan_shards`](crate::shard::plan_shards)), not the observed one in
//! the shard header — sites with no pages still belong to exactly one
//! shard, so planned ranges tile the site axis with no gaps and coverage
//! can be checked without opening a single shard file.

use crate::shard::{ShardError, ShardHeader, ShardSpec};
use std::path::{Path, PathBuf};
use webstruct_util::iofault::FaultSession;
use webstruct_util::sha::Sha256;

/// Manifest file name inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST.wsm";
/// Manifest format magic (first line).
pub const MANIFEST_MAGIC: &str = "WSM1";

/// One shard's line in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Shard file name (relative to the store directory).
    pub file: String,
    /// Planned site range `[start, end)` this shard covers.
    pub sites: std::ops::Range<u32>,
    /// Global id of the shard's first page.
    pub first_page: u32,
    /// Records in the shard payload.
    pub page_count: u32,
    /// Payload bytes after the shard header.
    pub payload_len: u64,
    /// SHA-256 of the shard payload (as stamped in the shard header).
    pub sha256: [u8; 32],
}

impl ManifestEntry {
    /// Build an entry from a planned spec and the header the writer
    /// actually stamped.
    #[must_use]
    pub fn from_parts(file: String, spec: &ShardSpec, header: &ShardHeader) -> Self {
        ManifestEntry {
            file,
            sites: spec.sites.start as u32..spec.sites.end as u32,
            first_page: spec.first_page,
            page_count: spec.page_count,
            payload_len: header.payload_len,
            sha256: header.sha256,
        }
    }

    /// Check a shard header against this entry. Returns the name of the
    /// first mismatching field, or `None` when they agree. Empty shards
    /// skip the `first_page` comparison (the writer stamps 0 when it
    /// never saw a record).
    #[must_use]
    pub fn header_mismatch(&self, header: &ShardHeader) -> Option<&'static str> {
        if header.sha256 != self.sha256 {
            return Some("sha256");
        }
        if header.payload_len != self.payload_len {
            return Some("payload_len");
        }
        if header.page_count != self.page_count {
            return Some("page_count");
        }
        if self.page_count > 0 && header.first_page != self.first_page {
            return Some("first_page");
        }
        if self.page_count > 0
            && (header.site_lo < self.sites.start || header.site_hi > self.sites.end)
        {
            return Some("site_range");
        }
        None
    }
}

/// The parsed (or to-be-written) store manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreManifest {
    /// Fingerprint of the `(web, page config, seed, shard target)` the
    /// store was written from; resume refuses to reuse shards across a
    /// fingerprint change.
    pub fingerprint: [u8; 32],
    /// Sites the store must tile, `0..n_sites`.
    pub n_sites: u32,
    /// Per-shard entries, in site order.
    pub shards: Vec<ManifestEntry>,
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex32(s: &str) -> Option<[u8; 32]> {
    if s.len() != 64 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let mut out = [0u8; 32];
    for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
        let hi = (chunk[0] as char).to_digit(16)?;
        let lo = (chunk[1] as char).to_digit(16)?;
        out[i] = ((hi << 4) | lo) as u8;
    }
    Some(out)
}

impl StoreManifest {
    /// Render the manifest, checksum line included.
    #[must_use]
    pub fn render(&self) -> String {
        let mut body = String::new();
        body.push_str(MANIFEST_MAGIC);
        body.push('\n');
        body.push_str(&format!("fingerprint {}\n", hex(&self.fingerprint)));
        body.push_str(&format!("sites {}\n", self.n_sites));
        body.push_str(&format!("shards {}\n", self.shards.len()));
        for (i, e) in self.shards.iter().enumerate() {
            body.push_str(&format!(
                "shard {i} {} {} {} {} {} {} {}\n",
                e.file,
                e.sites.start,
                e.sites.end,
                e.first_page,
                e.page_count,
                e.payload_len,
                hex(&e.sha256),
            ));
        }
        let mut sha = Sha256::new();
        sha.update(body.as_bytes());
        body.push_str(&format!("checksum {}\n", hex(&sha.finalize())));
        body
    }

    /// Parse a manifest, verifying the trailing checksum.
    ///
    /// # Errors
    /// [`ShardError::ManifestCorrupt`] naming the first malformed piece.
    pub fn parse(text: &str) -> Result<StoreManifest, ShardError> {
        let corrupt = |why: &'static str| ShardError::ManifestCorrupt(why);
        // Split off the checksum line and verify it covers the body.
        let body_end = text
            .rfind("checksum ")
            .ok_or(corrupt("missing checksum line"))?;
        let (body, tail) = text.split_at(body_end);
        let stamp = tail
            .strip_prefix("checksum ")
            .and_then(|s| unhex32(s.trim_end()))
            .ok_or(corrupt("malformed checksum line"))?;
        let mut sha = Sha256::new();
        sha.update(body.as_bytes());
        if sha.finalize() != stamp {
            return Err(corrupt("checksum mismatch"));
        }
        let mut lines = body.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(corrupt("bad magic (want WSM1)"));
        }
        let fingerprint = lines
            .next()
            .and_then(|l| l.strip_prefix("fingerprint "))
            .and_then(unhex32)
            .ok_or(corrupt("malformed fingerprint line"))?;
        let n_sites: u32 = lines
            .next()
            .and_then(|l| l.strip_prefix("sites "))
            .and_then(|s| s.parse().ok())
            .ok_or(corrupt("malformed sites line"))?;
        let n_shards: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("shards "))
            .and_then(|s| s.parse().ok())
            .ok_or(corrupt("malformed shards line"))?;
        let mut shards = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let line = lines.next().ok_or(corrupt("missing shard line"))?;
            let mut parts = line.split(' ');
            if parts.next() != Some("shard") {
                return Err(corrupt("shard line missing prefix"));
            }
            let idx: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(corrupt("shard line bad index"))?;
            if idx != i {
                return Err(corrupt("shard lines out of order"));
            }
            let file = parts
                .next()
                .ok_or(corrupt("shard line missing file"))?
                .to_string();
            let mut num = |why: &'static str| -> Result<u64, ShardError> {
                parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ShardError::ManifestCorrupt(why))
            };
            let site_start = num("shard line bad site_start")? as u32;
            let site_end = num("shard line bad site_end")? as u32;
            let first_page = num("shard line bad first_page")? as u32;
            let page_count = num("shard line bad page_count")? as u32;
            let payload_len = num("shard line bad payload_len")?;
            let sha256 = parts
                .next()
                .and_then(unhex32)
                .ok_or(corrupt("shard line bad sha256"))?;
            if parts.next().is_some() {
                return Err(corrupt("shard line trailing fields"));
            }
            shards.push(ManifestEntry {
                file,
                sites: site_start..site_end,
                first_page,
                page_count,
                payload_len,
                sha256,
            });
        }
        if lines.next().is_some() {
            return Err(corrupt("trailing lines after shard list"));
        }
        Ok(StoreManifest {
            fingerprint,
            n_sites,
            shards,
        })
    }

    /// Path of the manifest inside `dir`.
    #[must_use]
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_NAME)
    }

    /// Load and parse `dir`'s manifest.
    ///
    /// # Errors
    /// [`ShardError::ManifestMissing`] when the file does not exist;
    /// parse errors otherwise.
    pub fn load(dir: &Path) -> Result<StoreManifest, ShardError> {
        let path = Self::path_in(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ShardError::ManifestMissing)
            }
            Err(e) => return Err(ShardError::Io(e)),
        };
        Self::parse(&text)
    }

    /// Write the manifest crash-safely under `dir`: stream to
    /// `MANIFEST.wsm.tmp`, fsync, rename over the final name, fsync the
    /// directory. All four steps go through `session` so the torture
    /// sweep can crash inside any of them.
    ///
    /// # Errors
    /// Propagates injected or real I/O failures (the temp file is
    /// removed on the error path).
    pub fn write_atomic(&self, dir: &Path, session: &FaultSession) -> Result<(), ShardError> {
        use std::io::Write as _;
        let final_path = Self::path_in(dir);
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        let guard = crate::shard::TempFileGuard::new(tmp.clone());
        let mut file = session.create(&tmp)?;
        file.write_all(self.render().as_bytes())?;
        file.sync_all()?;
        drop(file);
        session.rename(&tmp, &final_path)?;
        guard.disarm();
        session.sync_dir(dir)?;
        Ok(())
    }

    /// Validate that the shard entries tile `0..n_sites` contiguously.
    ///
    /// # Errors
    /// [`ShardError::Gap`] at the first discontinuity (a store that
    /// starts late, skips sites between shards, or ends early).
    pub fn validate_coverage(&self) -> Result<(), ShardError> {
        let mut expected = 0u32;
        for e in &self.shards {
            if e.sites.start != expected {
                return Err(ShardError::Gap {
                    expected_site: expected,
                    found_site: e.sites.start,
                });
            }
            if e.sites.end < e.sites.start {
                return Err(ShardError::ManifestCorrupt("shard site range inverted"));
            }
            expected = e.sites.end;
        }
        if expected != self.n_sites {
            return Err(ShardError::Gap {
                expected_site: self.n_sites,
                found_site: expected,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoreManifest {
        StoreManifest {
            fingerprint: [7u8; 32],
            n_sites: 10,
            shards: vec![
                ManifestEntry {
                    file: "shard-00000.wsp".into(),
                    sites: 0..4,
                    first_page: 0,
                    page_count: 120,
                    payload_len: 4096,
                    sha256: [1u8; 32],
                },
                ManifestEntry {
                    file: "shard-00001.wsp".into(),
                    sites: 4..10,
                    first_page: 120,
                    page_count: 80,
                    payload_len: 2048,
                    sha256: [2u8; 32],
                },
            ],
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let m = sample();
        let text = m.render();
        let back = StoreManifest::parse(&text).expect("parse");
        assert_eq!(back, m);
    }

    #[test]
    fn any_flipped_byte_fails_the_checksum_or_parse() {
        let text = sample().render();
        let bytes = text.as_bytes();
        // Flip a byte in every line (not exhaustive over offsets to keep
        // the test fast, but covering each structural region).
        for pos in [0usize, 6, 40, 80, bytes.len() / 2, bytes.len() - 10] {
            let mut bad = bytes.to_vec();
            bad[pos] ^= 0x01;
            if let Ok(s) = String::from_utf8(bad) {
                assert!(
                    StoreManifest::parse(&s).is_err(),
                    "flip at {pos} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn truncated_manifest_is_rejected() {
        let text = sample().render();
        for cut in [5, 40, text.len() - 5] {
            assert!(StoreManifest::parse(&text[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn coverage_gaps_are_named() {
        let mut m = sample();
        m.shards[1].sites = 5..10; // hole: site 4 unowned
        match m.validate_coverage() {
            Err(ShardError::Gap {
                expected_site: 4,
                found_site: 5,
            }) => {}
            other => panic!("want Gap(4,5), got {other:?}"),
        }
        let mut m = sample();
        m.shards[0].sites = 1..4; // starts late
        assert!(matches!(
            m.validate_coverage(),
            Err(ShardError::Gap {
                expected_site: 0,
                found_site: 1
            })
        ));
        let mut m = sample();
        m.n_sites = 12; // ends early
        assert!(matches!(
            m.validate_coverage(),
            Err(ShardError::Gap {
                expected_site: 12,
                found_site: 10
            })
        ));
        assert!(sample().validate_coverage().is_ok());
    }

    #[test]
    fn header_mismatch_names_the_field() {
        let e = &sample().shards[0];
        let good = ShardHeader {
            page_count: 120,
            first_page: 0,
            site_lo: 0,
            site_hi: 4,
            payload_len: 4096,
            sha256: [1u8; 32],
        };
        assert_eq!(e.header_mismatch(&good), None);
        let mut h = good;
        h.sha256[0] ^= 1;
        assert_eq!(e.header_mismatch(&h), Some("sha256"));
        let mut h = good;
        h.page_count += 1;
        assert_eq!(e.header_mismatch(&h), Some("page_count"));
        let mut h = good;
        h.first_page = 99;
        assert_eq!(e.header_mismatch(&h), Some("first_page"));
        let mut h = good;
        h.site_hi = 7;
        assert_eq!(e.header_mismatch(&h), Some("site_range"));
        let mut h = good;
        h.payload_len = 1;
        assert_eq!(e.header_mismatch(&h), Some("payload_len"));
    }
}
