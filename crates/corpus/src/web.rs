//! The generative web model: which sites exist and which entities (with
//! which attributes) each site mentions.
//!
//! This module is the stand-in for the Yahoo! web cache. The model follows
//! the structure the paper observes qualitatively: a few national
//! aggregators with large but imperfect coverage, regional directories that
//! cover one metro area each, and a long tail of niche sites mentioning a
//! handful of entities. Coverage probabilities are tilted toward popular
//! entities, with a floor so that tail entities remain reachable — the
//! property that drives the paper's connectivity findings.

use crate::domain::{AttrMask, Attribute, Domain};
use crate::entity::EntityCatalog;
use crate::site::{Site, SiteKind};
use webstruct_util::ids::{EntityId, RegionId, SiteId};
use webstruct_util::rng::{Seed, Xoshiro256};
use webstruct_util::sample::AliasTable;

/// Parameters of the generative web model for one domain.
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// Number of national aggregator sites.
    pub n_aggregators: usize,
    /// Per-entity inclusion probability of the top aggregator.
    pub agg_reach_head: f64,
    /// Power-law decay of aggregator reach: rank `r` has reach
    /// `agg_reach_head * (1 + r)^-agg_reach_decay`.
    pub agg_reach_decay: f64,
    /// Number of regional directory sites (spread round-robin over regions).
    pub n_regional: usize,
    /// Fraction of its region covered by the top regional site of a region.
    pub regional_frac_head: f64,
    /// Power-law decay of regional site coverage by within-region rank.
    pub regional_alpha: f64,
    /// Number of niche/tail sites.
    pub n_niche: usize,
    /// Mean number of entities mentioned by a niche site.
    pub niche_mean_entities: f64,
    /// Popularity tilt `gamma`: inclusion multiplier is
    /// `min_inclusion + (1 - min_inclusion) * (1 - rank_frac)^gamma`.
    pub popularity_tilt: f64,
    /// Inclusion floor for the least popular entity.
    pub min_inclusion: f64,
    /// P(identifying attribute — phone or ISBN — exposed | listed), on
    /// aggregators.
    pub id_exposure_agg: f64,
    /// Same, on regional/niche sites.
    pub id_exposure_tail: f64,
    /// P(homepage link exposed | listed and entity has a homepage), on
    /// aggregators. Deliberately low: big directories often omit links,
    /// which produces the wider homepage spread of Figure 2.
    pub homepage_exposure_agg: f64,
    /// Same, on regional/niche sites (blogs link businesses readily).
    pub homepage_exposure_tail: f64,
    /// Probability an aggregator carries user reviews.
    pub review_site_frac_agg: f64,
    /// Probability a regional/niche site carries user reviews.
    pub review_site_frac_tail: f64,
    /// Poisson scale for review counts of a head entity on a head site.
    pub review_intensity: f64,
    /// Exponent concentrating review volume on popular entities.
    pub review_pop_exponent: f64,
    /// Popularity-independent floor on the per-site review rate, so even
    /// tail entities accumulate an occasional review somewhere (the paper's
    /// Figure 4(a) reaches ~90% 1-coverage, implying near-universal review
    /// presence across its restaurant database).
    pub review_floor: f64,
    /// Reviews rendered per review page (Fig 4(b) counts review *pages*).
    pub reviews_per_page: usize,
}

impl WebConfig {
    /// Calibrated preset for a domain (see DESIGN.md §3 and the
    /// calibration integration tests). Scale-free parameters: the absolute
    /// site counts are chosen for ~2·10⁴ entities and may be scaled.
    #[must_use]
    pub fn preset(domain: Domain) -> Self {
        // Baseline local-business preset, specialised per domain below.
        let mut cfg = WebConfig {
            n_aggregators: 30,
            agg_reach_head: 0.75,
            agg_reach_decay: 0.55,
            n_regional: 6_000,
            regional_frac_head: 0.55,
            regional_alpha: 0.75,
            n_niche: 24_000,
            niche_mean_entities: 7.5,
            popularity_tilt: 1.2,
            min_inclusion: 0.45,
            id_exposure_agg: 0.97,
            id_exposure_tail: 0.90,
            homepage_exposure_agg: 0.18,
            homepage_exposure_tail: 0.80,
            review_site_frac_agg: 0.6,
            review_site_frac_tail: 0.34,
            review_intensity: 40.0,
            review_pop_exponent: 2.2,
            review_floor: 0.08,
            reviews_per_page: 10,
        };
        match domain {
            Domain::Restaurants => {
                cfg.n_regional = 7_000;
                cfg.n_niche = 30_000;
                cfg.niche_mean_entities = 9.0;
            }
            Domain::Automotive => {
                cfg.agg_reach_head = 0.65;
                cfg.n_regional = 4_000;
                cfg.n_niche = 12_000;
                cfg.niche_mean_entities = 6.0;
            }
            Domain::Banks => {
                cfg.agg_reach_head = 0.8;
                cfg.n_regional = 5_000;
                cfg.n_niche = 14_000;
            }
            Domain::Libraries => {
                // Few entities, many civic sites each listing many: high
                // avg sites/entity (Table 2: 47 for phones, 251 homepages).
                cfg.agg_reach_head = 0.85;
                cfg.n_regional = 6_000;
                cfg.regional_frac_head = 0.85;
                cfg.n_niche = 18_000;
                cfg.niche_mean_entities = 10.0;
                cfg.homepage_exposure_agg = 0.5;
                cfg.homepage_exposure_tail = 0.92;
            }
            Domain::Schools => {
                cfg.agg_reach_head = 0.8;
                cfg.n_regional = 6_500;
                cfg.regional_frac_head = 0.75;
                cfg.n_niche = 20_000;
                cfg.niche_mean_entities = 9.0;
                cfg.homepage_exposure_tail = 0.85;
            }
            Domain::HotelsLodging => {
                // Travel is aggregator-rich: highest avg sites/entity.
                cfg.n_aggregators = 50;
                cfg.agg_reach_head = 0.85;
                cfg.agg_reach_decay = 0.4;
                cfg.n_regional = 6_000;
                cfg.regional_frac_head = 0.8;
                cfg.n_niche = 22_000;
                cfg.niche_mean_entities = 11.0;
            }
            Domain::RetailShopping => {
                cfg.agg_reach_head = 0.6;
                cfg.n_regional = 7_000;
                cfg.n_niche = 26_000;
                cfg.niche_mean_entities = 7.0;
            }
            Domain::HomeGarden => {
                // The most fragmented domain in Table 2 (4507 phone
                // components): weak aggregators, thin floor.
                cfg.agg_reach_head = 0.55;
                cfg.agg_reach_decay = 0.7;
                cfg.min_inclusion = 0.3;
                cfg.n_regional = 5_000;
                cfg.n_niche = 26_000;
                cfg.niche_mean_entities = 5.0;
            }
            Domain::Books => {
                // Books: no regions; amazon-like aggregators plus a wide
                // mid-tail of shops/blogs. Avg ~8 sites/entity (Table 2).
                cfg.n_aggregators = 20;
                cfg.agg_reach_head = 0.9;
                cfg.agg_reach_decay = 0.9;
                cfg.n_regional = 5_000;
                cfg.regional_frac_head = 0.022;
                cfg.regional_alpha = 0.4;
                cfg.n_niche = 18_000;
                cfg.niche_mean_entities = 4.0;
                cfg.popularity_tilt = 1.5;
                cfg.min_inclusion = 0.35;
                cfg.id_exposure_agg = 0.98;
                cfg.id_exposure_tail = 0.92;
            }
        }
        cfg
    }

    /// Total number of sites in the model.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.n_aggregators + self.n_regional + self.n_niche
    }

    /// Scale the regional/niche site counts by `factor` (used to shrink
    /// benches and tests). Aggregator count is deliberately *not* scaled:
    /// the handful of head sites exists regardless of how many entities we
    /// model, and removing them would distort the head of every coverage
    /// curve.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.n_regional = ((self.n_regional as f64 * factor).round() as usize).max(8);
        self.n_niche = ((self.n_niche as f64 * factor).round() as usize).max(8);
        self
    }
}

/// One (site, entity) mention with its exposed attributes.
///
/// Stored per-site in CSR order, so the site id is implicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mention {
    /// The mentioned entity.
    pub entity: EntityId,
    /// Attributes the site exposes for this entity.
    pub attrs: AttrMask,
    /// Number of user reviews of this entity hosted by this site.
    pub reviews: u16,
}

/// The generated web: the site population plus the site→mention relation.
#[derive(Debug, Clone)]
pub struct Web {
    /// The domain this web was generated for.
    pub domain: Domain,
    /// All sites.
    pub sites: Vec<Site>,
    /// Mentions of all sites, concatenated in site-id order.
    mentions: Vec<Mention>,
    /// CSR offsets: mentions of site `s` are
    /// `mentions[offsets[s] .. offsets[s+1]]`.
    offsets: Vec<u32>,
    /// Reviews per page used at generation time (for page counting).
    reviews_per_page: usize,
    /// Number of entities in the catalog this web was generated against.
    n_entities: usize,
    /// Per-site content revision counters — the epoch / churn model.
    ///
    /// Revision 0 (the state `generate` produces) renders exactly the
    /// bytes this crate has always rendered; bumping a site's revision
    /// re-keys the per-page RNG for that site's pages only, so the page
    /// *plan* (counts, ids, shard cuts) is untouched while the rendered
    /// content changes. That containment is what makes the dirty slice
    /// after a mutation exactly the shards whose sites were bumped.
    revisions: Vec<u32>,
}

impl Web {
    /// Generate a web for `catalog` under `config`, deterministically from
    /// `seed`.
    ///
    /// # Panics
    /// Panics when the config has no sites or probabilities are outside
    /// `[0, 1]`.
    #[must_use]
    pub fn generate(catalog: &EntityCatalog, config: &WebConfig, seed: Seed) -> Self {
        assert!(config.n_sites() > 0, "web must have sites");
        for &p in &[
            config.agg_reach_head,
            config.min_inclusion,
            config.id_exposure_agg,
            config.id_exposure_tail,
            config.homepage_exposure_agg,
            config.homepage_exposure_tail,
            config.review_site_frac_agg,
            config.review_site_frac_tail,
        ] {
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        }
        assert!(config.reviews_per_page > 0, "reviews_per_page must be > 0");

        let mut rng = Xoshiro256::from_seed(seed.derive("web").derive(catalog.domain.slug()));
        let n = catalog.len();
        let n_regions = catalog.n_regions;
        let domain = catalog.domain;
        let id_attr = if domain == Domain::Books {
            Attribute::Isbn
        } else {
            Attribute::Phone
        };

        // Precompute per-entity inclusion multipliers q(e) and popularity
        // percentile weights.
        let mut inclusion = Vec::with_capacity(n);
        let mut pop_frac = Vec::with_capacity(n);
        for i in 0..n {
            let rank_frac = if n > 1 { i as f64 / (n - 1) as f64 } else { 0.0 };
            let head_frac = 1.0 - rank_frac;
            pop_frac.push(head_frac);
            inclusion.push(
                config.min_inclusion
                    + (1.0 - config.min_inclusion) * head_frac.powf(config.popularity_tilt),
            );
        }

        // Region membership lists and per-region popularity alias tables
        // (for niche-site sampling).
        let mut region_members: Vec<Vec<EntityId>> = vec![Vec::new(); n_regions];
        for e in &catalog.entities {
            region_members[e.region.index()].push(e.id);
        }
        let region_tables: Vec<Option<AliasTable>> = region_members
            .iter()
            .map(|members| {
                if members.is_empty() {
                    None
                } else {
                    let weights: Vec<f64> = members
                        .iter()
                        .map(|id| (id.index() as f64 + 1.0).powf(-0.9))
                        .collect();
                    Some(AliasTable::new(&weights))
                }
            })
            .collect();

        let mut sites = Vec::with_capacity(config.n_sites());
        let mut mentions: Vec<Mention> = Vec::new();
        let mut offsets: Vec<u32> = Vec::with_capacity(config.n_sites() + 1);
        offsets.push(0);

        let emit = |rng: &mut Xoshiro256,
                        mentions: &mut Vec<Mention>,
                        site_kind: SiteKind,
                        carries_reviews: bool,
                        review_scale: f64,
                        entity: EntityId| {
            let is_agg = site_kind == SiteKind::Aggregator;
            let id_exposure = if is_agg {
                config.id_exposure_agg
            } else {
                config.id_exposure_tail
            };
            let hp_exposure = if is_agg {
                config.homepage_exposure_agg
            } else {
                config.homepage_exposure_tail
            };
            let mut attrs = AttrMask::EMPTY;
            if rng.bool_with(id_exposure) {
                attrs.insert(id_attr);
            }
            if catalog.entity(entity).homepage.is_some() && rng.bool_with(hp_exposure) {
                attrs.insert(Attribute::Homepage);
            }
            let mut reviews = 0u16;
            if carries_reviews && domain.has_attribute(Attribute::Review) {
                let floor = if is_agg { 0.0 } else { config.review_floor };
                let lambda = config.review_intensity
                    * review_scale
                    * (pop_frac[entity.index()].powf(config.review_pop_exponent) + floor);
                let c = rng.poisson(lambda).min(u64::from(u16::MAX)) as u16;
                if c > 0 {
                    attrs.insert(Attribute::Review);
                    // Review pages carry the business's contact details, so
                    // a review mention always exposes the identifying
                    // attribute too — this is what lets the paper's
                    // pipeline (phone match + review classifier) find them.
                    attrs.insert(id_attr);
                    reviews = c;
                }
            }
            mentions.push(Mention {
                entity,
                attrs,
                reviews,
            });
        };

        // --- Aggregators -------------------------------------------------
        for r in 0..config.n_aggregators {
            let id = SiteId::new(sites.len() as u32);
            let reach = config.agg_reach_head * (1.0 + r as f64).powf(-config.agg_reach_decay);
            let carries_reviews = rng.bool_with(config.review_site_frac_agg);
            let mut site_rng =
                Xoshiro256::from_seed(seed.derive("agg").derive_u64(id.raw().into()));
            for (i, &incl) in inclusion.iter().enumerate() {
                if site_rng.bool_with(reach * incl) {
                    emit(
                        &mut site_rng,
                        &mut mentions,
                        SiteKind::Aggregator,
                        carries_reviews,
                        // Aggregators accumulate review volume well beyond
                        // their listing reach (Fig 4(b): the head holds
                        // most review pages).
                        reach * 10.0,
                        EntityId::new(i as u32),
                    );
                }
            }
            offsets.push(mentions.len() as u32);
            sites.push(Site {
                id,
                host: format!("{}-central-{r}.example.org", domain.slug()),
                kind: SiteKind::Aggregator,
                region: None,
                reach,
                carries_reviews,
            });
        }

        // --- Regional directories ---------------------------------------
        for i in 0..config.n_regional {
            let id = SiteId::new(sites.len() as u32);
            let region = RegionId::new((i % n_regions) as u32);
            let within_rank = i / n_regions;
            let frac = config.regional_frac_head
                * (1.0 + within_rank as f64).powf(-config.regional_alpha);
            let carries_reviews = rng.bool_with(config.review_site_frac_tail);
            let mut site_rng =
                Xoshiro256::from_seed(seed.derive("regional").derive_u64(id.raw().into()));
            for &e in &region_members[region.index()] {
                if site_rng.bool_with(frac * inclusion[e.index()]) {
                    emit(
                        &mut site_rng,
                        &mut mentions,
                        SiteKind::Regional,
                        carries_reviews,
                        frac,
                        e,
                    );
                }
            }
            offsets.push(mentions.len() as u32);
            sites.push(Site {
                id,
                host: format!("metro{}-{}-guide-{i}.example.net", region.raw(), domain.slug()),
                kind: SiteKind::Regional,
                region: Some(region),
                reach: frac,
                carries_reviews,
            });
        }

        // --- Niche sites ---------------------------------------------------
        for i in 0..config.n_niche {
            let id = SiteId::new(sites.len() as u32);
            let region = RegionId::new(rng.u64_below(n_regions as u64) as u32);
            let carries_reviews = rng.bool_with(config.review_site_frac_tail);
            let mut site_rng =
                Xoshiro256::from_seed(seed.derive("niche").derive_u64(id.raw().into()));
            let want = 1 + site_rng.geometric(
                1.0 / config.niche_mean_entities.max(1.0),
            ) as usize;
            if let Some(table) = &region_tables[region.index()] {
                let members = &region_members[region.index()];
                let mut chosen = webstruct_util::FxHashSet::default();
                let mut attempts = 0;
                while chosen.len() < want.min(members.len()) && attempts < want * 8 {
                    attempts += 1;
                    let e = members[table.sample(&mut site_rng)];
                    if chosen.insert(e) {
                        emit(
                            &mut site_rng,
                            &mut mentions,
                            SiteKind::Niche,
                            carries_reviews,
                            // Niche review blogs are prolific per entity.
                            1.0,
                            e,
                        );
                    }
                }
            }
            offsets.push(mentions.len() as u32);
            sites.push(Site {
                id,
                host: format!("{}-notes-{i}.example.com", domain.slug()),
                kind: SiteKind::Niche,
                region: Some(region),
                reach: config.niche_mean_entities,
                carries_reviews,
            });
        }

        let n_sites = sites.len();
        Web {
            domain,
            sites,
            mentions,
            offsets,
            reviews_per_page: config.reviews_per_page,
            n_entities: n,
            revisions: vec![0; n_sites],
        }
    }

    /// Current content revision of site `site_idx` (0 = as generated).
    ///
    /// # Panics
    /// Panics when `site_idx` is out of range.
    #[must_use]
    pub fn revision(&self, site_idx: usize) -> u32 {
        self.revisions[site_idx]
    }

    /// All per-site revisions, in site order.
    #[must_use]
    pub fn revisions(&self) -> &[u32] {
        &self.revisions
    }

    /// Bump site `site_idx` to its next content revision: its pages render
    /// different bytes, every other site's pages are untouched, and the
    /// page plan (counts, ids, shard cuts) is unchanged.
    ///
    /// # Panics
    /// Panics when `site_idx` is out of range.
    pub fn bump_revision(&mut self, site_idx: usize) {
        self.revisions[site_idx] += 1;
    }

    /// Set site `site_idx`'s revision directly (for replaying a known
    /// epoch state).
    ///
    /// # Panics
    /// Panics when `site_idx` is out of range.
    pub fn set_revision(&mut self, site_idx: usize, rev: u32) {
        self.revisions[site_idx] = rev;
    }

    /// Number of sites.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of entities in the catalog this web was generated against.
    #[must_use]
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Total number of (site, entity) mentions.
    #[must_use]
    pub fn n_mentions(&self) -> usize {
        self.mentions.len()
    }

    /// Reviews rendered per review page.
    #[must_use]
    pub fn reviews_per_page(&self) -> usize {
        self.reviews_per_page
    }

    /// Mentions of one site.
    ///
    /// # Panics
    /// Panics when the site id is out of range.
    #[must_use]
    pub fn mentions_of(&self, site: SiteId) -> &[Mention] {
        let s = site.index();
        let lo = self.offsets[s] as usize;
        let hi = self.offsets[s + 1] as usize;
        &self.mentions[lo..hi]
    }

    /// Iterate over all (site, mention) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &Mention)> {
        self.sites
            .iter()
            .flat_map(move |site| self.mentions_of(site.id).iter().map(move |m| (site.id, m)))
    }

    /// Per-site entity lists restricted to mentions exposing `attr`
    /// (for `Review`, mentions with at least one review). This is the
    /// ground-truth occurrence table the oracle analyses consume.
    #[must_use]
    pub fn occurrence_lists(&self, attr: Attribute) -> Vec<Vec<EntityId>> {
        self.sites
            .iter()
            .map(|site| {
                let mut list: Vec<EntityId> = self
                    .mentions_of(site.id)
                    .iter()
                    .filter(|m| m.attrs.contains(attr))
                    .map(|m| m.entity)
                    .collect();
                // Sorted by entity id so oracle and extracted tables compare
                // directly.
                list.sort_unstable();
                list
            })
            .collect()
    }

    /// Per-site `(entity, review_page_count)` lists, sorted by entity id:
    /// the paper's Figure 4(b) counts *pages* containing a review.
    #[must_use]
    pub fn review_page_lists(&self) -> Vec<Vec<(EntityId, u32)>> {
        self.sites
            .iter()
            .map(|site| {
                let mut list: Vec<(EntityId, u32)> = self
                    .mentions_of(site.id)
                    .iter()
                    .filter(|m| m.reviews > 0)
                    .map(|m| {
                        let pages = (u32::from(m.reviews))
                            .div_ceil(self.reviews_per_page as u32);
                        (m.entity, pages)
                    })
                    .collect();
                list.sort_unstable();
                list
            })
            .collect()
    }

    /// Average number of sites mentioning an entity under `attr`,
    /// averaged over entities that appear at least once (Table 2's
    /// "Avg. #sites per entity").
    #[must_use]
    pub fn avg_sites_per_entity(&self, attr: Attribute) -> f64 {
        let mut counts = vec![0u32; self.n_entities];
        for list in self.occurrence_lists(attr) {
            for e in list {
                counts[e.index()] += 1;
            }
        }
        let present: Vec<u32> = counts.into_iter().filter(|&c| c > 0).collect();
        if present.is_empty() {
            return 0.0;
        }
        f64::from(present.iter().sum::<u32>()) / present.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::CatalogConfig;

    fn small_web(domain: Domain) -> (EntityCatalog, Web) {
        let catalog = EntityCatalog::generate(&CatalogConfig::new(domain, 2_000), Seed(11));
        let config = WebConfig::preset(domain).scaled(0.05);
        let web = Web::generate(&catalog, &config, Seed(11));
        (catalog, web)
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = small_web(Domain::Restaurants);
        let (_, b) = small_web(Domain::Restaurants);
        assert_eq!(a.n_mentions(), b.n_mentions());
        assert_eq!(a.mentions_of(SiteId::new(0)), b.mentions_of(SiteId::new(0)));
    }

    #[test]
    fn csr_offsets_are_consistent() {
        let (_, web) = small_web(Domain::Banks);
        let total: usize = web
            .sites
            .iter()
            .map(|s| web.mentions_of(s.id).len())
            .sum();
        assert_eq!(total, web.n_mentions());
        assert_eq!(web.iter().count(), web.n_mentions());
    }

    #[test]
    fn aggregators_dwarf_niche_sites() {
        let (_, web) = small_web(Domain::Restaurants);
        let agg_avg: f64 = web
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::Aggregator)
            .map(|s| web.mentions_of(s.id).len() as f64)
            .sum::<f64>()
            / web.sites.iter().filter(|s| s.kind == SiteKind::Aggregator).count() as f64;
        let niche_avg: f64 = web
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::Niche)
            .map(|s| web.mentions_of(s.id).len() as f64)
            .sum::<f64>()
            / web.sites.iter().filter(|s| s.kind == SiteKind::Niche).count() as f64;
        assert!(
            agg_avg > 20.0 * niche_avg,
            "aggregator avg {agg_avg}, niche avg {niche_avg}"
        );
    }

    #[test]
    fn top_aggregator_covers_most_popular_entities() {
        let (_, web) = small_web(Domain::Restaurants);
        let top = web.mentions_of(SiteId::new(0));
        let head_hits = top.iter().filter(|m| m.entity.index() < 200).count();
        // Top aggregator reach 0.75 on head entities (inclusion ~1).
        assert!(
            (100..=200).contains(&head_hits),
            "top aggregator covers {head_hits}/200 head entities"
        );
    }

    #[test]
    fn regional_sites_stay_in_region() {
        let (catalog, web) = small_web(Domain::Schools);
        for site in web.sites.iter().filter(|s| s.kind == SiteKind::Regional) {
            let region = site.region.expect("regional sites have a region");
            for m in web.mentions_of(site.id) {
                assert_eq!(catalog.entity(m.entity).region, region);
            }
        }
    }

    #[test]
    fn niche_sites_have_no_duplicate_entities() {
        let (_, web) = small_web(Domain::Restaurants);
        for site in web.sites.iter().filter(|s| s.kind == SiteKind::Niche) {
            let ms = web.mentions_of(site.id);
            let mut ids: Vec<u32> = ms.iter().map(|m| m.entity.raw()).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate entity on {}", site.host);
        }
    }

    #[test]
    fn occurrence_lists_respect_attribute_masks() {
        let (_, web) = small_web(Domain::Restaurants);
        let phones = web.occurrence_lists(Attribute::Phone);
        let homepages = web.occurrence_lists(Attribute::Homepage);
        let total_phone: usize = phones.iter().map(Vec::len).sum();
        let total_hp: usize = homepages.iter().map(Vec::len).sum();
        assert!(total_phone > 0);
        assert!(total_hp > 0);
        assert!(
            total_phone > total_hp,
            "phones ({total_phone}) should be more exposed than homepages ({total_hp})"
        );
        // ISBNs never appear in a restaurant web.
        let isbns = web.occurrence_lists(Attribute::Isbn);
        assert_eq!(isbns.iter().map(Vec::len).sum::<usize>(), 0);
    }

    #[test]
    fn books_expose_isbn_not_phone() {
        let (_, web) = small_web(Domain::Books);
        let isbn_total: usize = web.occurrence_lists(Attribute::Isbn).iter().map(Vec::len).sum();
        let phone_total: usize = web
            .occurrence_lists(Attribute::Phone)
            .iter()
            .map(Vec::len)
            .sum();
        assert!(isbn_total > 0);
        assert_eq!(phone_total, 0);
        // No reviews outside the restaurants domain.
        let review_pages: u32 = web
            .review_page_lists()
            .iter()
            .flat_map(|l| l.iter().map(|&(_, p)| p))
            .sum();
        assert_eq!(review_pages, 0);
    }

    #[test]
    fn restaurants_have_reviews_with_head_skew() {
        let (_, web) = small_web(Domain::Restaurants);
        let mut head_reviews = 0u64;
        let mut tail_reviews = 0u64;
        for (_, m) in web.iter() {
            if m.entity.index() < 200 {
                head_reviews += u64::from(m.reviews);
            } else if m.entity.index() >= 1800 {
                tail_reviews += u64::from(m.reviews);
            }
        }
        assert!(head_reviews > 0, "head entities must accumulate reviews");
        assert!(
            head_reviews > 10 * tail_reviews.max(1),
            "reviews must concentrate on the head: head {head_reviews}, tail {tail_reviews}"
        );
    }

    #[test]
    fn review_pages_follow_reviews_per_page() {
        let (_, web) = small_web(Domain::Restaurants);
        let rpp = web.reviews_per_page() as u32;
        let lists = web.review_page_lists();
        for (site, list) in web.sites.iter().zip(&lists) {
            for &(e, pages) in list {
                let m = web
                    .mentions_of(site.id)
                    .iter()
                    .find(|m| m.entity == e)
                    .expect("mention exists");
                assert_eq!(pages, u32::from(m.reviews).div_ceil(rpp));
                assert!(pages >= 1);
            }
        }
    }

    #[test]
    fn avg_sites_per_entity_is_positive_and_sane() {
        let (_, web) = small_web(Domain::Restaurants);
        let avg = web.avg_sites_per_entity(Attribute::Phone);
        assert!(avg > 1.0, "avg {avg}");
        assert!(avg < 500.0, "avg {avg}");
    }

    #[test]
    fn scaled_config_shrinks_tail_but_keeps_aggregators() {
        let cfg = WebConfig::preset(Domain::Banks);
        let half = cfg.clone().scaled(0.5);
        assert_eq!(half.n_regional, cfg.n_regional / 2);
        assert_eq!(half.n_aggregators, cfg.n_aggregators);
        let tiny = cfg.clone().scaled(1e-9);
        assert_eq!(tiny.n_aggregators, cfg.n_aggregators);
        assert_eq!(tiny.n_regional, 8);
        assert_eq!(tiny.n_niche, 8);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn generate_rejects_bad_probabilities() {
        let catalog = EntityCatalog::generate(&CatalogConfig::new(Domain::Banks, 10), Seed(1));
        let mut cfg = WebConfig::preset(Domain::Banks).scaled(0.01);
        cfg.min_inclusion = 1.5;
        let _ = Web::generate(&catalog, &cfg, Seed(1));
    }
}
