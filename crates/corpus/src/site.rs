//! The website population: head aggregators, regional directories, and the
//! long tail of niche sites.

use webstruct_util::ids::{RegionId, SiteId};

/// The structural class of a website in the generative model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A national head aggregator (yelp.com-like): covers a large fraction
    /// of all entities in the domain.
    Aggregator,
    /// A regional directory (chamber of commerce, metro guide): covers
    /// entities from a single region.
    Regional,
    /// A niche/tail site (critic blog, personal page): a handful of
    /// entities from one region.
    Niche,
}

impl SiteKind {
    /// Short stable name.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            SiteKind::Aggregator => "aggregator",
            SiteKind::Regional => "regional",
            SiteKind::Niche => "niche",
        }
    }
}

/// One website (host) in the synthetic web.
#[derive(Debug, Clone)]
pub struct Site {
    /// Dense id. Ids are assigned aggregators-first but analyses never rely
    /// on that: site ordering is always recomputed from observed sizes.
    pub id: SiteId,
    /// Host name, e.g. `dine-3.example.org`.
    pub host: String,
    /// Structural class.
    pub kind: SiteKind,
    /// Home region for regional and niche sites; `None` for aggregators.
    pub region: Option<RegionId>,
    /// Latent reach parameter used during generation; retained for
    /// diagnostics (aggregators: per-entity inclusion probability;
    /// regional: fraction of its region; niche: expected entity count).
    pub reach: f64,
    /// Whether the site hosts user reviews at all.
    pub carries_reviews: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_slugs() {
        assert_eq!(SiteKind::Aggregator.slug(), "aggregator");
        assert_eq!(SiteKind::Regional.slug(), "regional");
        assert_eq!(SiteKind::Niche.slug(), "niche");
    }

    #[test]
    fn site_is_constructible() {
        let s = Site {
            id: SiteId::new(3),
            host: "dine-3.example.org".to_string(),
            kind: SiteKind::Aggregator,
            region: None,
            reach: 0.5,
            carries_reviews: true,
        };
        assert_eq!(s.id.raw(), 3);
        assert!(s.region.is_none());
    }
}
