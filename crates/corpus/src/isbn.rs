//! ISBN identifiers: the identifying attribute of the Books domain.
//!
//! The paper's book database is keyed by ISBN, matched on pages "formatted
//! either as a 10-digit or a 13-digit ISBN, along with the string 'ISBN' in
//! a small window near the match". We model the canonical identifier as the
//! 9-digit registration core; every core renders as a valid ISBN-10 (check
//! digit mod 11, `X` allowed) and as a valid 978-prefixed ISBN-13 (check
//! digit mod 10), hyphenated or plain.

use webstruct_util::rng::Xoshiro256;

/// A book identifier: the 9-digit ISBN core (group + publisher + title).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Isbn(u32);

/// Error constructing an [`Isbn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsbnError {
    /// The core exceeds 9 digits.
    CoreOutOfRange(u64),
    /// A rendered string failed check-digit validation.
    BadCheckDigit,
    /// A rendered string has the wrong number of digits.
    WrongLength(usize),
    /// ISBN-13 prefix is not 978/979.
    BadPrefix,
}

impl std::fmt::Display for IsbnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsbnError::CoreOutOfRange(v) => write!(f, "ISBN core {v} exceeds 9 digits"),
            IsbnError::BadCheckDigit => write!(f, "check digit mismatch"),
            IsbnError::WrongLength(n) => write!(f, "expected 10 or 13 digits, got {n}"),
            IsbnError::BadPrefix => write!(f, "ISBN-13 must start with 978 or 979"),
        }
    }
}

impl std::error::Error for IsbnError {}

/// ISBN-10 check character for a 9-digit core: weighted sum with weights
/// 10..2, check = (11 - sum mod 11) mod 11, rendered as `X` when 10.
#[must_use]
pub fn isbn10_check_char(core: u32) -> char {
    let digits = core_digits(core);
    let sum: u32 = digits
        .iter()
        .enumerate()
        .map(|(i, &d)| (10 - i as u32) * u32::from(d))
        .sum();
    let check = (11 - sum % 11) % 11;
    if check == 10 {
        'X'
    } else {
        char::from_digit(check, 10).expect("digit < 10")
    }
}

/// ISBN-13 check digit for the 12 digits `978` + core.
#[must_use]
pub fn isbn13_check_digit(core: u32) -> u8 {
    let mut digits = [9u8, 7, 8, 0, 0, 0, 0, 0, 0, 0, 0, 0];
    digits[3..].copy_from_slice(&core_digits(core));
    let sum: u32 = digits
        .iter()
        .enumerate()
        .map(|(i, &d)| u32::from(d) * if i % 2 == 0 { 1 } else { 3 })
        .sum();
    ((10 - sum % 10) % 10) as u8
}

fn core_digits(core: u32) -> [u8; 9] {
    let mut out = [0u8; 9];
    let mut v = core;
    for slot in out.iter_mut().rev() {
        *slot = (v % 10) as u8;
        v /= 10;
    }
    out
}

impl Isbn {
    /// Construct from a 9-digit core.
    ///
    /// # Errors
    /// Returns [`IsbnError::CoreOutOfRange`] when `core >= 10^9`.
    pub fn new(core: u64) -> Result<Self, IsbnError> {
        if core >= 1_000_000_000 {
            return Err(IsbnError::CoreOutOfRange(core));
        }
        Ok(Isbn(core as u32))
    }

    /// The 9-digit core.
    #[must_use]
    pub fn core(self) -> u32 {
        self.0
    }

    /// Render as a plain 10-character ISBN-10.
    #[must_use]
    pub fn to_isbn10(self) -> String {
        let mut out = String::with_capacity(10);
        self.isbn10_into(&mut out);
        out
    }

    /// Append the plain ISBN-10 rendering to `out` without allocating.
    pub fn isbn10_into(self, out: &mut String) {
        use std::fmt::Write;
        write!(out, "{:09}{}", self.0, isbn10_check_char(self.0))
            .expect("writing to a String cannot fail");
    }

    /// Render as a hyphenated ISBN-10 (`0-306-40615-2`-style grouping; we
    /// use a fixed 1-3-5 grouping, which extractors must not depend on).
    #[must_use]
    pub fn to_isbn10_hyphenated(self) -> String {
        let mut out = String::with_capacity(13);
        self.isbn10_hyphenated_into(&mut out);
        out
    }

    /// Append the hyphenated ISBN-10 rendering to `out` without allocating.
    pub fn isbn10_hyphenated_into(self, out: &mut String) {
        let mut digits = [0u8; 10];
        self.isbn10_ascii(&mut digits);
        let s = std::str::from_utf8(&digits).expect("ASCII by construction");
        out.push_str(&s[0..1]);
        out.push('-');
        out.push_str(&s[1..4]);
        out.push('-');
        out.push_str(&s[4..9]);
        out.push('-');
        out.push_str(&s[9..10]);
    }

    /// Render as a plain 13-digit ISBN-13 (978 prefix).
    #[must_use]
    pub fn to_isbn13(self) -> String {
        let mut out = String::with_capacity(13);
        self.isbn13_into(&mut out);
        out
    }

    /// Append the plain ISBN-13 rendering to `out` without allocating.
    pub fn isbn13_into(self, out: &mut String) {
        use std::fmt::Write;
        write!(out, "978{:09}{}", self.0, isbn13_check_digit(self.0))
            .expect("writing to a String cannot fail");
    }

    /// Render as a hyphenated ISBN-13.
    #[must_use]
    pub fn to_isbn13_hyphenated(self) -> String {
        let mut out = String::with_capacity(17);
        self.isbn13_hyphenated_into(&mut out);
        out
    }

    /// Append the hyphenated ISBN-13 rendering to `out` without allocating.
    pub fn isbn13_hyphenated_into(self, out: &mut String) {
        let mut digits = [0u8; 13];
        digits[0] = b'9';
        digits[1] = b'7';
        digits[2] = b'8';
        for (slot, d) in digits[3..12].iter_mut().zip(core_digits(self.0)) {
            *slot = b'0' + d;
        }
        digits[12] = b'0' + isbn13_check_digit(self.0);
        let s = std::str::from_utf8(&digits).expect("ASCII by construction");
        out.push_str(&s[0..3]);
        out.push('-');
        out.push_str(&s[3..4]);
        out.push('-');
        out.push_str(&s[4..7]);
        out.push('-');
        out.push_str(&s[7..12]);
        out.push('-');
        out.push_str(&s[12..13]);
    }

    /// The ten ASCII characters of the plain ISBN-10 form, into a stack
    /// buffer (digits plus a possible trailing `X`).
    fn isbn10_ascii(self, out: &mut [u8; 10]) {
        for (slot, d) in out[..9].iter_mut().zip(core_digits(self.0)) {
            *slot = b'0' + d;
        }
        out[9] = isbn10_check_char(self.0) as u8;
    }

    /// Parse any of the four renderings back to the core, verifying the
    /// check digit.
    ///
    /// # Errors
    /// Returns an error when the digit count (after stripping hyphens and
    /// spaces) is not 10 or 13, the 13-digit prefix is not 978, or the
    /// check digit fails.
    pub fn parse(text: &str) -> Result<Self, IsbnError> {
        // Collect up to 13 significant characters into a stack buffer —
        // parsing runs per candidate token on the extraction hot path, so
        // it must not allocate.
        let mut buf = ['\0'; 13];
        let mut len = 0usize;
        for c in text.chars().filter(|c| !matches!(c, '-' | ' ')) {
            if len < buf.len() {
                buf[len] = c;
            }
            len += 1;
        }
        if len > buf.len() {
            return Err(IsbnError::WrongLength(len));
        }
        let cleaned = &buf[..len];
        match cleaned.len() {
            10 => {
                let mut sum = 0u32;
                let mut core = 0u64;
                for (i, &c) in cleaned.iter().enumerate() {
                    let value = if i == 9 && (c == 'X' || c == 'x') {
                        10
                    } else {
                        c.to_digit(10).ok_or(IsbnError::BadCheckDigit)?
                    };
                    if i < 9 {
                        core = core * 10 + u64::from(value);
                    }
                    sum += (10 - i as u32) * value;
                }
                if !sum.is_multiple_of(11) {
                    return Err(IsbnError::BadCheckDigit);
                }
                Isbn::new(core)
            }
            13 => {
                if cleaned[0] != '9' || cleaned[1] != '7' || (cleaned[2] != '8') {
                    // 979 exists in the wild but our catalog only issues 978.
                    if cleaned[2] == '9' {
                        return Err(IsbnError::BadPrefix);
                    }
                    return Err(IsbnError::BadPrefix);
                }
                let mut sum = 0u32;
                let mut core = 0u64;
                for (i, &c) in cleaned.iter().enumerate() {
                    let value = c.to_digit(10).ok_or(IsbnError::BadCheckDigit)?;
                    if (3..12).contains(&i) {
                        core = core * 10 + u64::from(value);
                    }
                    sum += value * if i % 2 == 0 { 1 } else { 3 };
                }
                if !sum.is_multiple_of(10) {
                    return Err(IsbnError::BadCheckDigit);
                }
                Isbn::new(core)
            }
            n => Err(IsbnError::WrongLength(n)),
        }
    }

    /// Sample a random rendering, weighted toward the hyphenated-13 form
    /// that dominates modern book pages.
    #[must_use]
    pub fn render_random(self, rng: &mut Xoshiro256) -> String {
        let mut out = String::with_capacity(17);
        self.render_random_into(rng, &mut out);
        out
    }

    /// Append a random rendering to `out` without allocating. Draws from
    /// the RNG exactly as [`Isbn::render_random`] does.
    pub fn render_random_into(self, rng: &mut Xoshiro256, out: &mut String) {
        match rng.u64_below(5) {
            0 => self.isbn10_into(out),
            1 => self.isbn10_hyphenated_into(out),
            2 => self.isbn13_into(out),
            _ => self.isbn13_hyphenated_into(out),
        }
    }
}

impl std::fmt::Display for Isbn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_isbn13_hyphenated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webstruct_util::rng::Seed;

    #[test]
    fn known_check_digits() {
        // 0-306-40615-2 is the canonical Wikipedia example.
        let isbn = Isbn::new(30_640_615).unwrap();
        assert_eq!(isbn.to_isbn10(), "0306406152");
        assert_eq!(isbn.to_isbn10_hyphenated(), "0-306-40615-2");
        // Its ISBN-13 form is 978-0-306-40615-7.
        assert_eq!(isbn.to_isbn13(), "9780306406157");
        assert_eq!(isbn.to_isbn13_hyphenated(), "978-0-306-40615-7");
    }

    #[test]
    fn check_char_x_case() {
        // Core 043942089 has weighted sum ≡ 1 mod 11 → check 'X'.
        // Find one programmatically to keep the test robust.
        let core = (0..200u32)
            .find(|&c| isbn10_check_char(c) == 'X')
            .expect("an X check digit exists among small cores");
        let isbn = Isbn::new(u64::from(core)).unwrap();
        assert!(isbn.to_isbn10().ends_with('X'));
        assert_eq!(Isbn::parse(&isbn.to_isbn10()), Ok(isbn));
    }

    #[test]
    fn parse_roundtrips_all_renderings() {
        let mut rng = Xoshiro256::from_seed(Seed(5));
        for _ in 0..500 {
            let isbn = Isbn::new(rng.u64_below(1_000_000_000)).unwrap();
            for s in [
                isbn.to_isbn10(),
                isbn.to_isbn10_hyphenated(),
                isbn.to_isbn13(),
                isbn.to_isbn13_hyphenated(),
            ] {
                assert_eq!(Isbn::parse(&s), Ok(isbn), "failed on {s}");
            }
        }
    }

    #[test]
    fn parse_rejects_corrupted_check_digit() {
        let isbn = Isbn::new(123_456_789).unwrap();
        let mut s10 = isbn.to_isbn10();
        let last = s10.pop().unwrap();
        let wrong = if last == '0' { '1' } else { '0' };
        s10.push(wrong);
        assert_eq!(Isbn::parse(&s10), Err(IsbnError::BadCheckDigit));

        let mut s13 = isbn.to_isbn13();
        let last = s13.pop().unwrap();
        let wrong = if last == '0' { '1' } else { '0' };
        s13.push(wrong);
        assert_eq!(Isbn::parse(&s13), Err(IsbnError::BadCheckDigit));
    }

    #[test]
    fn parse_rejects_bad_lengths_and_prefix() {
        assert_eq!(Isbn::parse("12345"), Err(IsbnError::WrongLength(5)));
        assert_eq!(Isbn::parse(""), Err(IsbnError::WrongLength(0)));
        // 977 prefix (a periodical, not a book) must be rejected.
        assert_eq!(Isbn::parse("9771234567898"), Err(IsbnError::BadPrefix));
    }

    #[test]
    fn new_rejects_wide_core() {
        assert_eq!(
            Isbn::new(1_000_000_000),
            Err(IsbnError::CoreOutOfRange(1_000_000_000))
        );
    }

    #[test]
    fn render_random_always_parses_back() {
        let mut rng = Xoshiro256::from_seed(Seed(6));
        let isbn = Isbn::new(424_242_424).unwrap();
        for _ in 0..50 {
            let s = isbn.render_random(&mut rng);
            assert_eq!(Isbn::parse(&s), Ok(isbn));
        }
    }

    #[test]
    fn display_is_hyphenated_13() {
        let isbn = Isbn::new(30_640_615).unwrap();
        assert_eq!(isbn.to_string(), "978-0-306-40615-7");
    }
}
