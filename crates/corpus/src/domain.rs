//! The nine study domains and their identifying attributes (paper Table 1).

/// A content domain from Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// Books, identified by ISBN (1.4M entities in the paper).
    Books,
    /// Restaurants: phone, homepage, reviews.
    Restaurants,
    /// Automotive businesses: phone, homepage.
    Automotive,
    /// Banks: phone, homepage.
    Banks,
    /// Libraries: phone, homepage.
    Libraries,
    /// Schools: phone, homepage.
    Schools,
    /// Hotels & Lodging: phone, homepage.
    HotelsLodging,
    /// Retail & Shopping: phone, homepage.
    RetailShopping,
    /// Home & Garden: phone, homepage.
    HomeGarden,
}

impl Domain {
    /// All nine domains, in the paper's Table 1 order.
    pub const ALL: [Domain; 9] = [
        Domain::Books,
        Domain::Restaurants,
        Domain::Automotive,
        Domain::Banks,
        Domain::Libraries,
        Domain::Schools,
        Domain::HotelsLodging,
        Domain::RetailShopping,
        Domain::HomeGarden,
    ];

    /// The eight local-business domains (everything except Books), the
    /// domains plotted in Figures 1 and 2.
    pub const LOCAL: [Domain; 8] = [
        Domain::Restaurants,
        Domain::Automotive,
        Domain::Banks,
        Domain::Libraries,
        Domain::Schools,
        Domain::HotelsLodging,
        Domain::RetailShopping,
        Domain::HomeGarden,
    ];

    /// Short stable name (used in figure ids and file names).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Domain::Books => "books",
            Domain::Restaurants => "restaurants",
            Domain::Automotive => "automotive",
            Domain::Banks => "banks",
            Domain::Libraries => "libraries",
            Domain::Schools => "schools",
            Domain::HotelsLodging => "hotels",
            Domain::RetailShopping => "retail",
            Domain::HomeGarden => "homegarden",
        }
    }

    /// Display name as used in the paper's figures.
    #[must_use]
    pub fn display_name(self) -> &'static str {
        match self {
            Domain::Books => "Books",
            Domain::Restaurants => "Restaurants",
            Domain::Automotive => "Automotive",
            Domain::Banks => "Banks",
            Domain::Libraries => "Library",
            Domain::Schools => "Schools",
            Domain::HotelsLodging => "Hotels & Lodging",
            Domain::RetailShopping => "Retail & Shopping",
            Domain::HomeGarden => "Home & Garden",
        }
    }

    /// Whether this domain's entities are geographically local businesses.
    #[must_use]
    pub fn is_local_business(self) -> bool {
        !matches!(self, Domain::Books)
    }

    /// The identifying and studied attributes for this domain (Table 1).
    #[must_use]
    pub fn attributes(self) -> &'static [Attribute] {
        match self {
            Domain::Books => &[Attribute::Isbn],
            Domain::Restaurants => &[Attribute::Phone, Attribute::Homepage, Attribute::Review],
            _ => &[Attribute::Phone, Attribute::Homepage],
        }
    }

    /// Whether the domain carries a given attribute.
    #[must_use]
    pub fn has_attribute(self, attr: Attribute) -> bool {
        self.attributes().contains(&attr)
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// An entity attribute studied by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Attribute {
    /// US phone number — the near-unique identifier for local businesses.
    Phone,
    /// Homepage URL.
    Homepage,
    /// ISBN — the identifier for books.
    Isbn,
    /// User-generated review (an *open* attribute in the paper's taxonomy:
    /// set-valued, each additional value adds information).
    Review,
}

impl Attribute {
    /// Short stable name.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Attribute::Phone => "phone",
            Attribute::Homepage => "homepage",
            Attribute::Isbn => "isbn",
            Attribute::Review => "review",
        }
    }

    /// Whether the attribute is *closed* (single correct value) or *open*
    /// (set-valued), per Section 4 of the paper.
    #[must_use]
    pub fn is_closed(self) -> bool {
        !matches!(self, Attribute::Review)
    }

    /// Bit for [`AttrMask`].
    #[must_use]
    const fn bit(self) -> u8 {
        match self {
            Attribute::Phone => 1,
            Attribute::Homepage => 2,
            Attribute::Isbn => 4,
            Attribute::Review => 8,
        }
    }
}

impl std::fmt::Display for Attribute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// Compact set of [`Attribute`]s exposed by one (site, entity) mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct AttrMask(u8);

impl AttrMask {
    /// The empty mask.
    pub const EMPTY: AttrMask = AttrMask(0);

    /// Construct from a list of attributes.
    #[must_use]
    pub fn of(attrs: &[Attribute]) -> Self {
        let mut m = AttrMask::EMPTY;
        for &a in attrs {
            m.insert(a);
        }
        m
    }

    /// Add an attribute.
    pub fn insert(&mut self, attr: Attribute) {
        self.0 |= attr.bit();
    }

    /// Remove an attribute.
    pub fn remove(&mut self, attr: Attribute) {
        self.0 &= !attr.bit();
    }

    /// Membership test.
    #[must_use]
    pub fn contains(self, attr: Attribute) -> bool {
        self.0 & attr.bit() != 0
    }

    /// True when no attribute is set.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two masks.
    #[must_use]
    pub fn union(self, other: AttrMask) -> AttrMask {
        AttrMask(self.0 | other.0)
    }

    /// Iterate over contained attributes.
    pub fn iter(self) -> impl Iterator<Item = Attribute> {
        [
            Attribute::Phone,
            Attribute::Homepage,
            Attribute::Isbn,
            Attribute::Review,
        ]
        .into_iter()
        .filter(move |a| self.contains(*a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_attribute_assignments() {
        assert_eq!(Domain::Books.attributes(), &[Attribute::Isbn]);
        assert_eq!(
            Domain::Restaurants.attributes(),
            &[Attribute::Phone, Attribute::Homepage, Attribute::Review]
        );
        for d in Domain::LOCAL {
            assert!(d.has_attribute(Attribute::Phone));
            assert!(d.has_attribute(Attribute::Homepage));
            assert!(d.is_local_business());
        }
        assert!(!Domain::Books.is_local_business());
        assert!(!Domain::Banks.has_attribute(Attribute::Review));
    }

    #[test]
    fn all_domains_have_unique_slugs() {
        let mut slugs: Vec<_> = Domain::ALL.iter().map(|d| d.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), Domain::ALL.len());
    }

    #[test]
    fn local_is_all_minus_books() {
        assert_eq!(Domain::LOCAL.len(), Domain::ALL.len() - 1);
        assert!(!Domain::LOCAL.contains(&Domain::Books));
    }

    #[test]
    fn openness_taxonomy() {
        assert!(Attribute::Phone.is_closed());
        assert!(Attribute::Homepage.is_closed());
        assert!(Attribute::Isbn.is_closed());
        assert!(!Attribute::Review.is_closed());
    }

    #[test]
    fn attr_mask_set_operations() {
        let mut m = AttrMask::EMPTY;
        assert!(m.is_empty());
        m.insert(Attribute::Phone);
        m.insert(Attribute::Review);
        assert!(m.contains(Attribute::Phone));
        assert!(m.contains(Attribute::Review));
        assert!(!m.contains(Attribute::Isbn));
        m.remove(Attribute::Phone);
        assert!(!m.contains(Attribute::Phone));
        let both = AttrMask::of(&[Attribute::Isbn]).union(m);
        assert!(both.contains(Attribute::Isbn));
        assert!(both.contains(Attribute::Review));
        let collected: Vec<_> = both.iter().collect();
        assert_eq!(collected, vec![Attribute::Isbn, Attribute::Review]);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(Domain::HotelsLodging.to_string(), "Hotels & Lodging");
        assert_eq!(Attribute::Phone.to_string(), "phone");
    }
}
