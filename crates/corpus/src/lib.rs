//! # webstruct-corpus
//!
//! The synthetic web: the stand-in for the proprietary inputs of *An
//! Analysis of Structured Data on the Web* (VLDB 2012) — the Yahoo! web
//! cache, the business-listings database, and the ISBN database.
//!
//! * [`domain`] — the nine study domains and attribute taxonomy (Table 1);
//! * [`phone`], [`isbn`] — identifying-attribute types with the textual
//!   renderings that appear on pages;
//! * [`entity`] — reference entity catalogs with identifier indexes;
//! * [`site`], [`web`] — the generative site/mention model (aggregators,
//!   regional directories, niche tail);
//! * [`stats`] — checkable heavy-tail diagnostics of generated webs;
//! * [`text`] — review vs. boilerplate language models;
//! * [`page`] — lazy deterministic page rendering, so the extraction
//!   pipeline in `webstruct-extract` runs over real text;
//! * [`shard`] — out-of-core page shards with crash-safe writes,
//!   resume-after-kill and quarantine-and-repair recovery;
//! * [`manifest`] — the store-level `MANIFEST.wsm` commit record
//!   (per-shard digests, site coverage, config/seed fingerprint);
//! * [`extcache`] — content-addressed per-shard extraction cache
//!   (`ext-NNNNN.wse` files keyed by shard digest + extractor
//!   fingerprint, committed through the same manifest).

//!
//! ## Example
//!
//! ```
//! use webstruct_corpus::{CatalogConfig, Domain, EntityCatalog, Web, WebConfig};
//! use webstruct_util::Seed;
//!
//! let catalog = EntityCatalog::generate(
//!     &CatalogConfig::new(Domain::Restaurants, 200),
//!     Seed::DEFAULT,
//! );
//! let web = Web::generate(
//!     &catalog,
//!     &WebConfig::preset(Domain::Restaurants).scaled(0.01),
//!     Seed::DEFAULT,
//! );
//! assert!(web.n_mentions() > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod domain;
pub mod entity;
pub mod extcache;
pub mod isbn;
pub mod manifest;
pub mod page;
pub mod phone;
pub mod shard;
pub mod site;
pub mod stats;
pub mod text;
pub mod web;

pub use domain::{AttrMask, Attribute, Domain};
pub use entity::{CatalogConfig, Entity, EntityCatalog};
pub use isbn::Isbn;
pub use page::{Page, PageConfig, PageKind, PageScratch, PageStream};
pub use phone::{PhoneFormat, PhoneNumber};
pub use extcache::{ext_name, ext_path, read_ext_header, ExtCacheHeader, ExtLoad};
pub use manifest::{
    revision_digest, zero_revision_digest, ExtEntry, ExtSection, ManifestEntry, StoreManifest,
    MANIFEST_NAME,
};
pub use shard::{
    plan_shards, read_header_path, PageShardReader, PageShardWriter, RecoveryReport, ScrubFinding,
    ScrubReport, ScrubStatus, ShardError, ShardRecord, ShardSpec, ShardStore, ShardedWeb,
    TempFileGuard,
};
pub use site::{Site, SiteKind};
pub use web::{Mention, Web, WebConfig};
