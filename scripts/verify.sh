#!/usr/bin/env bash
# Tier-1 verification plus the parallel-determinism contract and the
# pipeline bench. Everything runs offline with the std toolchain only.
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip the bench harness (tier-1 + determinism only)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> determinism: parallel output must be byte-identical to sequential"
cargo test -q --test determinism

echo "==> faults: crawler edge cases + fault-injected determinism"
cargo test -q --test faults

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> bench: pipeline stages across thread counts -> artifacts/BENCH_pipeline.json"
    mkdir -p artifacts
    # Absolute path: cargo runs bench binaries with cwd at the package root.
    cargo bench -p webstruct-bench --bench pipeline -- \
        --out "$PWD/artifacts/BENCH_pipeline.json" \
        --scale "${BENCH_SCALE:-0.02}" \
        --threads "${BENCH_THREADS:-1,2,4}" \
        --repeats "${BENCH_REPEATS:-2}"

    echo "==> bench: crawl throughput under fault injection -> artifacts/BENCH_faults.json"
    cargo bench -p webstruct-bench --bench faults -- \
        --out "$PWD/artifacts/BENCH_faults.json" \
        --scale "${BENCH_SCALE:-0.02}" \
        --budget "${BENCH_FAULT_BUDGET:-2000}" \
        --rates "${BENCH_FAULT_RATES:-0,0.1,0.3}" \
        --repeats "${BENCH_REPEATS:-2}"
fi

echo "==> verify OK"
