#!/usr/bin/env bash
# Tier-1 verification plus the parallel-determinism contract and the
# pipeline bench. Everything runs offline with the std toolchain only.
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip the bench harness (tier-1 + determinism only)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> lint: clippy perf pass (hot-path regressions surface as warnings)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --quiet -- -W clippy::perf
else
    echo "    (clippy not installed; skipped)"
fi

echo "==> determinism: parallel output must be byte-identical to sequential"
cargo test -q --test determinism

echo "==> golden: scratch hot path must be byte-identical to the owned path"
cargo test -q --test golden

echo "==> allocs: fused hot path must stay within its per-page budget"
cargo test -q -p webstruct-bench --test alloc_budget

echo "==> faults: crawler edge cases + fault-injected determinism"
cargo test -q --test faults

echo "==> fault-unit: breaker FSM, retry jitter bounds, clock monotonicity"
cargo test -q --test fault_unit

echo "==> durability: crash-safe store, resume-after-kill, quarantine + repair"
cargo test -q --test durability

echo "==> manifest: golden artifact hashes (committed + quick-scale regen)"
cargo test -q --test manifest

echo "==> epoch: incremental == cold across fractions/threads, poisoned-cache recompute"
cargo test -q --test epoch

echo "==> serve: endpoint byte-identity, parser taxonomy, chaos accounting, replay digests"
cargo test -q --test serve

echo "==> trace: RUN_REPORT.json smoke — metrics tail identical across thread counts"
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
for t in 1 2 8; do
    WEBSTRUCT_TRACE=json WEBSTRUCT_THREADS=$t \
        ./target/release/webstruct trace run 0.05 "$TRACE_TMP/t$t" >/dev/null
    [[ -f "$TRACE_TMP/t$t/RUN_REPORT.json" ]] || {
        echo "    FAIL: no RUN_REPORT.json at $t threads"; exit 1; }
    [[ -f "$TRACE_TMP/t$t/trace.json" ]] || {
        echo "    FAIL: no trace.json at $t threads"; exit 1; }
    # "metrics" is by contract the final key of RUN_REPORT.json, so the
    # deterministic tail can be split off with a single sed.
    sed -n '/"metrics":/,$p' "$TRACE_TMP/t$t/RUN_REPORT.json" > "$TRACE_TMP/metrics-$t"
    grep -q '"runner.figures"' "$TRACE_TMP/metrics-$t" || {
        echo "    FAIL: runner counters missing from metrics tail"; exit 1; }
done
for t in 2 8; do
    diff -u "$TRACE_TMP/metrics-1" "$TRACE_TMP/metrics-$t" >/dev/null || {
        echo "    FAIL: metrics tail diverged between 1 and $t threads"
        diff -u "$TRACE_TMP/metrics-1" "$TRACE_TMP/metrics-$t" | head -20
        exit 1
    }
done
echo "    trace smoke OK (metrics byte-identical across threads 1/2/8)"

echo "==> stream: out-of-core render -> shards -> extract at scale 0.1"
./target/release/webstruct stream 0.1 "$TRACE_TMP/shards" 4 | sed 's/^/    /'

echo "==> scrub: full integrity pass (every byte re-hashed) over the streamed store"
./target/release/webstruct scrub "$TRACE_TMP/shards" | sed 's/^/    /'

echo "==> epoch: 1%-mutation incremental re-run (dirty slice only, cache replay)"
./target/release/webstruct epoch banks 0.05 "$TRACE_TMP/epoch" 0.01 | sed 's/^/    /'

echo "==> serve: smoke — boot --watch on an ephemeral port, hit three endpoints, clean shutdown"
./target/release/webstruct serve --watch restaurants 0.02 "$TRACE_TMP/serve-store" 0 \
    > "$TRACE_TMP/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "serving on" "$TRACE_TMP/serve.log" 2>/dev/null && break
    sleep 0.1
done
SERVE_URL="$(grep -o 'http://[0-9.:]*' "$TRACE_TMP/serve.log" | head -1)"
if [[ -z "$SERVE_URL" ]]; then
    echo "    FAIL: server did not come up"; cat "$TRACE_TMP/serve.log"; exit 1
fi
# Prefer curl; fall back to the bundled std-only client on bare runners.
http_get() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1" >/dev/null
    else
        ./target/release/webstruct http GET "$1" >/dev/null
    fi
}
for ep in / /coverage /sites; do
    http_get "$SERVE_URL$ep" || { echo "    FAIL: GET $ep"; exit 1; }
done

echo "==> serve: cache smoke — repeat hit, ETag 304 revalidation, live epoch swap"
# Reconstruct the epoch ETag from the coverage body: "{epoch}-{first 16
# hex of the output digest}", quoted.
COV_BODY="$(./target/release/webstruct http GET "$SERVE_URL/coverage" 2>/dev/null)"
COV_EPOCH="$(echo "$COV_BODY" | grep -o '"epoch": *[0-9]*' | head -1 | grep -o '[0-9]*$')"
COV_DIGEST="$(echo "$COV_BODY" | grep -o '"output_digest": *"[0-9a-f]*"' | head -1 | grep -o '[0-9a-f]\{64\}')"
ETAG="\"${COV_EPOCH}-${COV_DIGEST:0:16}\""
# A conditional replay of the same validator must draw an empty-body 304
# (the client exits 0 on 304).
BODY_304="$(./target/release/webstruct http GET "$SERVE_URL/coverage" "$ETAG" 2>/dev/null)" || {
    echo "    FAIL: conditional GET /coverage"; exit 1; }
[[ -z "$BODY_304" ]] || { echo "    FAIL: 304 must carry an empty body"; exit 1; }
# The repeated plain hits above must have landed in the response cache.
./target/release/webstruct http GET "$SERVE_URL/metrics" 2>/dev/null \
    | grep -q '"serve.cache.hits": *[1-9]' || {
    echo "    FAIL: no serve.cache.hits recorded for repeated GETs"; exit 1; }
# Trigger a live epoch swap and wait for the publish.
./target/release/webstruct http POST "$SERVE_URL/admin/epoch?fraction_bp=100&seed=7" >/dev/null || {
    echo "    FAIL: POST /admin/epoch"; exit 1; }
SWAPPED=""
for _ in $(seq 1 100); do
    if ./target/release/webstruct http GET "$SERVE_URL/metrics" 2>/dev/null \
        | grep -q '"serve.cache.swaps": *[1-9]'; then
        SWAPPED=1; break
    fi
    sleep 0.1
done
[[ -n "$SWAPPED" ]] || { echo "    FAIL: epoch swap did not publish"; exit 1; }
# The pre-swap validator is now stale: the same conditional GET must
# draw the fresh full-bodied 200.
BODY_STALE="$(./target/release/webstruct http GET "$SERVE_URL/coverage" "$ETAG" 2>/dev/null)" || {
    echo "    FAIL: stale conditional GET /coverage"; exit 1; }
[[ -n "$BODY_STALE" ]] || {
    echo "    FAIL: stale validator must draw the full 200 after the swap"; exit 1; }
echo "    cache smoke OK (hit counters, 304 revalidation, swap + stale validator)"

if command -v curl >/dev/null 2>&1; then
    curl -fsS -X POST "$SERVE_URL/shutdown" >/dev/null
else
    ./target/release/webstruct http POST "$SERVE_URL/shutdown" >/dev/null
fi
wait "$SERVE_PID" || {
    echo "    FAIL: server exited nonzero (accounting inconsistent?)"
    cat "$TRACE_TMP/serve.log"; exit 1
}
echo "    serve smoke OK ($SERVE_URL: /, /coverage, /sites, clean shutdown)"

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> bench: pipeline stages across thread counts -> artifacts/BENCH_pipeline.json"
    mkdir -p artifacts
    # Keep the previous artifact so the new run can be compared against it.
    PREV_BENCH=""
    if [[ -f artifacts/BENCH_pipeline.json ]]; then
        PREV_BENCH="$(mktemp)"
        cp artifacts/BENCH_pipeline.json "$PREV_BENCH"
    fi
    # Absolute path: cargo runs bench binaries with cwd at the package root.
    cargo bench -p webstruct-bench --bench pipeline -- \
        --out "$PWD/artifacts/BENCH_pipeline.json" \
        --scale "${BENCH_SCALE:-0.02}" \
        --threads "${BENCH_THREADS:-1,2,4}" \
        --repeats "${BENCH_REPEATS:-2}"

    if [[ -n "$PREV_BENCH" ]]; then
        echo "==> bench: before/after vs previous artifact (render_extract hot path)"
        extract_hot() {
            # Pull "field": value for the render_extract measurement lines.
            grep '"stage": "render_extract"' "$1" \
                | sed -E 's/.*"threads": ([0-9]+).*"secs": ([0-9.]+).*/threads=\1 secs=\2/' \
                || true
        }
        echo "  previous:"
        extract_hot "$PREV_BENCH" | sed 's/^/    /'
        echo "  current:"
        extract_hot artifacts/BENCH_pipeline.json | sed 's/^/    /'
        for metric in pages_per_sec mb_per_sec allocs_per_page bytes_alloc_per_page; do
            prev_v="$(grep -o "\"$metric\": [0-9.]*" "$PREV_BENCH" | head -1 | cut -d' ' -f2 || true)"
            cur_v="$(grep -o "\"$metric\": [0-9.]*" artifacts/BENCH_pipeline.json | head -1 | cut -d' ' -f2 || true)"
            if [[ -n "$cur_v" ]]; then
                echo "  $metric: ${prev_v:-n/a} -> $cur_v"
            fi
        done
        rm -f "$PREV_BENCH"
    fi

    echo "==> bench: crawl throughput under fault injection -> artifacts/BENCH_faults.json"
    cargo bench -p webstruct-bench --bench faults -- \
        --out "$PWD/artifacts/BENCH_faults.json" \
        --scale "${BENCH_SCALE:-0.02}" \
        --budget "${BENCH_FAULT_BUDGET:-2000}" \
        --rates "${BENCH_FAULT_RATES:-0,0.1,0.3}" \
        --repeats "${BENCH_REPEATS:-2}"

    echo "==> bench: out-of-core scale sweep (child process per scale) -> artifacts/BENCH_scale.json"
    cargo bench -p webstruct-bench --bench scale -- \
        --out "$PWD/artifacts/BENCH_scale.json" \
        --scales "${BENCH_SCALES:-0.02,0.1,0.5,1.0}" \
        --threads "${BENCH_SCALE_THREADS:-1,2}" \
        --repeats "${BENCH_REPEATS:-2}"

    echo "==> bench: durability torture sweep + resume-after-kill cost -> artifacts/BENCH_durability.json"
    cargo bench -p webstruct-bench --bench durability -- \
        --out "$PWD/artifacts/BENCH_durability.json" \
        --scale "${BENCH_DURABILITY_SCALE:-0.1}" \
        --sweep-stride "${BENCH_SWEEP_STRIDE:-3}" \
        --trials "${BENCH_CORRUPTION_TRIALS:-10}"

    echo "==> bench: incremental recomputation cost after a 1% mutation -> artifacts/BENCH_incremental.json"
    cargo bench -p webstruct-bench --bench incremental -- \
        --out "$PWD/artifacts/BENCH_incremental.json" \
        --scale "${BENCH_INCREMENTAL_SCALE:-0.1}" \
        --shard-kb "${BENCH_INCREMENTAL_SHARD_KB:-4}" \
        --fraction "${BENCH_INCREMENTAL_FRACTION:-0.01}"

    echo "==> bench: serving-layer traffic replay over real sockets -> artifacts/BENCH_serve.json"
    cargo bench -p webstruct-bench --bench serve -- \
        --out "$PWD/artifacts/BENCH_serve.json" \
        --scale "${BENCH_SERVE_SCALE:-0.02}" \
        --requests "${BENCH_SERVE_REQUESTS:-2000}" \
        --clients "${BENCH_SERVE_CLIENTS:-4}"

    echo "==> bench: throughput gate vs committed baseline (scripts/bench_baseline.json)"
    # Warn-only unless WEBSTRUCT_BENCH_GATE=strict (local runs on the
    # baseline hardware should export it; CI clocks are too noisy). Runs
    # after both benches so it gates the pipeline artifact and the fresh
    # scale sweep in one pass.
    scripts/bench_gate.sh
fi

echo "==> verify OK"
