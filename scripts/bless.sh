#!/usr/bin/env bash
# Re-bless the golden artifact manifests after an INTENTIONAL output
# change. This rewrites:
#
#   tests/MANIFEST.sha256        — hashes of committed artifacts/*.csv
#   tests/MANIFEST_quick.sha256  — hashes of quick-scale in-process CSVs
#   tests/EPOCH.sha256           — output digest of the golden epoch scenario
#   tests/SERVE.sha256           — combined digest of the serve endpoint sweep
#
# If the full-scale committed artifacts themselves changed, regenerate
# them first (`cargo run --release --bin webstruct -- reproduce`) and
# commit the new CSVs together with the new manifests, so reviewers see
# exactly which artifacts moved.
set -euo pipefail
cd "$(dirname "$0")/.."

WEBSTRUCT_BLESS=1 cargo test -q --test manifest
WEBSTRUCT_BLESS=1 cargo test -q --test epoch epoch_digest_matches_golden
WEBSTRUCT_BLESS=1 cargo test -q --test serve serve_golden_digest_matches_blessed

echo
echo "Manifests re-blessed. Review the diff before committing:"
git --no-pager diff --stat -- tests/MANIFEST.sha256 tests/MANIFEST_quick.sha256 tests/EPOCH.sha256 tests/SERVE.sha256 || true
