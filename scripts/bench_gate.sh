#!/usr/bin/env bash
# Throughput regression gate: compare a fresh BENCH_pipeline.json against
# the committed baseline (scripts/bench_baseline.json) with a tolerance
# band.
#
# The gate looks at the 1-thread render_extract measurement — the fused
# hot path the SWAR kernels accelerate — and checks:
#
#   pages_per_sec >= (1 - tolerance) * baseline.pages_per_sec
#   mb_per_sec    >= (1 - tolerance) * baseline.mb_per_sec
#   allocs_per_page <= baseline.max_allocs_per_page   (hardware-independent)
#
# When a scale-sweep artifact (BENCH_scale.json) is present, it also
# checks the out-of-core path's hardware-independent ratios, with no
# tolerance band:
#
#   min_thread2_speedup      >= baseline.min_thread2_speedup
#   rss_ratio_full_vs_tenth  <= baseline.max_rss_ratio_full_vs_tenth
#
# Modes:
#   default                      warn-only: print verdicts, always exit 0.
#                                This is the CI mode — shared runners have
#                                noisy clocks and slower cores, so absolute
#                                throughput is advisory there.
#   WEBSTRUCT_BENCH_GATE=strict  hard-fail: exit 1 on any violation. Use
#                                locally (same hardware as the baseline).
#
# Knobs:
#   WEBSTRUCT_BENCH_TOL   fractional tolerance band, default 0.40
#                         (fresh numbers may be up to 40% below baseline).
#
# When a durability artifact (BENCH_durability.json) is present, it also
# gates the crash-safety story:
#
#   resume_cost_fraction     <= WEBSTRUCT_RESUME_MAX (default 0.5)
#   resume_manifest_identical == true                 (hard-fail)
#   sweep_failures            == 0                    (hard-fail)
#   corruption_failures       == 0                    (hard-fail)
#
# Convergence counts and manifest identity are deterministic — they fail
# the gate even in warn mode; only the cost fraction is advisory there.
#
# When an incremental artifact (BENCH_incremental.json) is present, it
# also gates the dirty-slice recomputation story:
#
#   incremental_cost_fraction <= baseline.max_incremental_cost_fraction
#                                (default 0.05; advisory in warn mode)
#   byte_identical            == true  (hard-fail: a warm/cold digest
#                                mismatch is a determinism violation)
#
# When a serving artifact (BENCH_serve.json) is present, it also gates
# the serving layer's traffic replay:
#
#   rps_t{1,2,4}    >= baseline.min_rps_t{1,2,4}     (per-worker-count
#                      uncached floors, advisory in warn mode; falls back
#                      to the headline rps >= min_rps against artifacts
#                      or baselines that predate the per-thread keys)
#   min_cached_ratio >= baseline.min_cached_rps_ratio (the response cache
#                      must pay for itself at every worker count;
#                      advisory in warn mode)
#   allocs_per_request_cached <= baseline.max_allocs_per_request_cached
#                      (steady-state heap traffic per cache hit;
#                      advisory in warn mode)
#   p99_latency_ms  <= baseline.max_p99_latency_ms   (advisory in warn mode)
#   byte_identical  == true  (hard-fail: a response-digest divergence
#                             across server thread counts is a
#                             determinism violation)
#   cached_digest_identical == true  (hard-fail in any mode: the cache
#                             serving different bytes than the router is
#                             a correctness violation, not a slowdown)
#
# Usage: scripts/bench_gate.sh [artifact.json] [baseline.json] [scale_artifact.json] [durability_artifact.json] [incremental_artifact.json] [serve_artifact.json]
set -euo pipefail
cd "$(dirname "$0")/.."

ARTIFACT="${1:-artifacts/BENCH_pipeline.json}"
BASELINE="${2:-scripts/bench_baseline.json}"
SCALE_ARTIFACT="${3:-artifacts/BENCH_scale.json}"
DURABILITY_ARTIFACT="${4:-artifacts/BENCH_durability.json}"
INCREMENTAL_ARTIFACT="${5:-artifacts/BENCH_incremental.json}"
SERVE_ARTIFACT="${6:-artifacts/BENCH_serve.json}"
TOL="${WEBSTRUCT_BENCH_TOL:-0.40}"
MODE="${WEBSTRUCT_BENCH_GATE:-warn}"

if [[ ! -f "$ARTIFACT" ]]; then
    echo "bench_gate: no artifact at $ARTIFACT (run the pipeline bench first)" >&2
    exit 1
fi
if [[ ! -f "$BASELINE" ]]; then
    echo "bench_gate: no baseline at $BASELINE" >&2
    exit 1
fi

# Pull "key": <number> out of a one-measurement-per-line JSON file. The
# repo's JSON is hand-rolled and stable, so grep/sed parsing is reliable
# and keeps this script dependency-free (no jq on minimal runners).
json_num() { # file key
    grep -o "\"$2\": *-\{0,1\}[0-9.]*" "$1" | head -1 | sed 's/.*: *//'
}

base_stage="$(grep -o '"stage": *"[a-z_]*"' "$BASELINE" | head -1 | sed 's/.*"\([a-z_]*\)"$/\1/')"
base_threads="$(json_num "$BASELINE" threads)"
base_pps="$(json_num "$BASELINE" pages_per_sec)"
base_mbs="$(json_num "$BASELINE" mb_per_sec)"
base_app="$(json_num "$BASELINE" max_allocs_per_page)"

# The fresh measurement line for the baseline's stage at its thread count.
line="$(grep "\"stage\": \"$base_stage\"" "$ARTIFACT" | grep "\"threads\": $base_threads," | head -1 || true)"
if [[ -z "$line" ]]; then
    echo "bench_gate: artifact has no $base_stage measurement at $base_threads thread(s)" >&2
    exit 1
fi
line_num() { # key
    echo "$line" | grep -o "\"$1\": *-\{0,1\}[0-9.]*" | head -1 | sed 's/.*: *//'
}
cur_pps="$(line_num pages_per_sec)"
cur_mbs="$(line_num mb_per_sec)"
cur_app="$(line_num allocs_per_page)"

fails=0
check_floor() { # label current baseline
    local floor ok
    floor="$(awk -v b="$3" -v t="$TOL" 'BEGIN { printf "%.3f", b * (1 - t) }')"
    ok="$(awk -v c="$2" -v f="$floor" 'BEGIN { print (c >= f) ? 1 : 0 }')"
    if [[ "$ok" == "1" ]]; then
        echo "  OK    $1: $2 >= $floor (baseline $3, tolerance $TOL)"
    else
        echo "  SLOW  $1: $2 < $floor (baseline $3, tolerance $TOL)"
        fails=$((fails + 1))
    fi
}
check_ceiling() { # label current max
    local ok
    ok="$(awk -v c="$2" -v m="$3" 'BEGIN { print (c <= m) ? 1 : 0 }')"
    if [[ "$ok" == "1" ]]; then
        echo "  OK    $1: $2 <= $3"
    else
        echo "  FAIL  $1: $2 > $3 (per-page allocations crept back in)"
        fails=$((fails + 1))
    fi
}

# Absolute floor (no tolerance band): for hardware-independent ratios.
check_floor_abs() { # label current floor
    local ok
    ok="$(awk -v c="$2" -v f="$3" 'BEGIN { print (c >= f) ? 1 : 0 }')"
    if [[ "$ok" == "1" ]]; then
        echo "  OK    $1: $2 >= $3"
    else
        echo "  FAIL  $1: $2 < $3 (scheduler regressed going parallel)"
        fails=$((fails + 1))
    fi
}

echo "bench_gate: $base_stage at $base_threads thread(s), $ARTIFACT vs $BASELINE"
check_floor pages_per_sec "$cur_pps" "$base_pps"
check_floor mb_per_sec "$cur_mbs" "$base_mbs"
check_ceiling allocs_per_page "$cur_app" "$base_app"

# Scale-sweep stage: only when both the artifact and the baseline keys
# exist, so pipeline-only runs and older baselines keep working. A
# "null" ratio in the artifact (scale not swept) parses to empty and
# skips that check.
base_t2_floor="$(json_num "$BASELINE" min_thread2_speedup || true)"
base_rss_max="$(json_num "$BASELINE" max_rss_ratio_full_vs_tenth || true)"
if [[ -f "$SCALE_ARTIFACT" && -n "$base_t2_floor" ]]; then
    echo "bench_gate: out-of-core scale sweep, $SCALE_ARTIFACT vs $BASELINE"
    cur_t2="$(json_num "$SCALE_ARTIFACT" min_thread2_speedup || true)"
    cur_rss="$(json_num "$SCALE_ARTIFACT" rss_ratio_full_vs_tenth || true)"
    if [[ -n "$cur_t2" ]]; then
        check_floor_abs min_thread2_speedup "$cur_t2" "$base_t2_floor"
    else
        echo "  SKIP  min_thread2_speedup: not in artifact (single-thread sweep?)"
    fi
    if [[ -n "$cur_rss" && -n "$base_rss_max" ]]; then
        check_ceiling rss_ratio_full_vs_tenth "$cur_rss" "$base_rss_max"
    else
        echo "  SKIP  rss_ratio_full_vs_tenth: sweep did not cover scales 0.1 and 1.0"
    fi
fi

# Durability stage: crash-point sweep convergence, corruption-trial
# convergence and manifest identity are exact properties of the recovery
# code — a nonzero count means resume/repair genuinely diverged, so they
# hard-fail regardless of mode. The resume cost fraction is a wall-clock
# ratio (best-of-3 on both sides) and goes through the normal fails
# counter.
if [[ -f "$DURABILITY_ARTIFACT" ]]; then
    echo "bench_gate: durability, $DURABILITY_ARTIFACT"
    resume_frac="$(json_num "$DURABILITY_ARTIFACT" resume_cost_fraction)"
    sweep_fail="$(json_num "$DURABILITY_ARTIFACT" sweep_failures)"
    sweep_pts="$(json_num "$DURABILITY_ARTIFACT" sweep_points)"
    corr_fail="$(json_num "$DURABILITY_ARTIFACT" corruption_failures)"
    corr_trials="$(json_num "$DURABILITY_ARTIFACT" corruption_trials)"
    manifest_ok="$(grep -o '"resume_manifest_identical": *[a-z]*' "$DURABILITY_ARTIFACT" | head -1 | sed 's/.*: *//')"
    RESUME_MAX="${WEBSTRUCT_RESUME_MAX:-0.5}"
    ok="$(awk -v c="$resume_frac" -v m="$RESUME_MAX" 'BEGIN { print (c <= m) ? 1 : 0 }')"
    if [[ "$ok" == "1" ]]; then
        echo "  OK    resume_cost_fraction: $resume_frac <= $RESUME_MAX"
    else
        echo "  SLOW  resume_cost_fraction: $resume_frac > $RESUME_MAX (resume re-rendered more than the tail)"
        fails=$((fails + 1))
    fi
    hard_fails=0
    if [[ "${sweep_fail:-1}" != "0" ]]; then
        echo "  FAIL  sweep_failures: ${sweep_fail:-missing} crash point(s) of $sweep_pts did not converge"
        hard_fails=$((hard_fails + 1))
    else
        echo "  OK    sweep_failures: 0 of $sweep_pts crash points"
    fi
    if [[ "${corr_fail:-1}" != "0" ]]; then
        echo "  FAIL  corruption_failures: ${corr_fail:-missing} trial(s) of $corr_trials did not converge"
        hard_fails=$((hard_fails + 1))
    else
        echo "  OK    corruption_failures: 0 of $corr_trials trials"
    fi
    if [[ "$manifest_ok" != "true" ]]; then
        echo "  FAIL  resume_manifest_identical: ${manifest_ok:-missing}"
        hard_fails=$((hard_fails + 1))
    else
        echo "  OK    resume_manifest_identical: true"
    fi
    if [[ "$hard_fails" -gt 0 ]]; then
        echo "bench_gate: FAIL ($hard_fails durability violation(s); deterministic, failing in any mode)"
        exit 1
    fi
fi

# Incremental stage: byte identity between the warm (dirty-slice) run
# and the cold oracle is exact — a mismatch hard-fails in any mode. The
# cost fraction is a wall-clock ratio (best-of-3 on both sides) and goes
# through the normal fails counter, so it is advisory in warn mode.
if [[ -f "$INCREMENTAL_ARTIFACT" ]]; then
    echo "bench_gate: incremental, $INCREMENTAL_ARTIFACT"
    inc_frac="$(json_num "$INCREMENTAL_ARTIFACT" incremental_cost_fraction)"
    inc_identical="$(grep -o '"byte_identical": *[a-z]*' "$INCREMENTAL_ARTIFACT" | head -1 | sed 's/.*: *//')"
    base_inc_max="$(json_num "$BASELINE" max_incremental_cost_fraction || true)"
    INC_MAX="${WEBSTRUCT_INCREMENTAL_MAX:-${base_inc_max:-0.05}}"
    ok="$(awk -v c="$inc_frac" -v m="$INC_MAX" 'BEGIN { print (c <= m) ? 1 : 0 }')"
    if [[ "$ok" == "1" ]]; then
        echo "  OK    incremental_cost_fraction: $inc_frac <= $INC_MAX"
    else
        echo "  SLOW  incremental_cost_fraction: $inc_frac > $INC_MAX (warm re-run did more than the dirty slice)"
        fails=$((fails + 1))
    fi
    if [[ "$inc_identical" != "true" ]]; then
        echo "  FAIL  byte_identical: ${inc_identical:-missing} (warm run diverged from the cold oracle)"
        echo "bench_gate: FAIL (incremental determinism violation; failing in any mode)"
        exit 1
    fi
    echo "  OK    byte_identical: true"
fi

# Serving stage: throughput, cached speedup and tail latency are
# wall-clock (advisory in warn mode, with env-overridable limits);
# replay-digest identity across server thread counts and cached-vs-
# uncached byte identity are exact and hard-fail in any mode. The
# artifact records hardware_threads so a baseline mismatch is explicable.
if [[ -f "$SERVE_ARTIFACT" ]]; then
    serve_hw="$(json_num "$SERVE_ARTIFACT" hardware_threads || true)"
    echo "bench_gate: serve, $SERVE_ARTIFACT (hardware_threads: ${serve_hw:-unrecorded})"
    serve_p99="$(json_num "$SERVE_ARTIFACT" p99_latency_ms)"
    serve_identical="$(grep -o '"byte_identical": *[a-z]*' "$SERVE_ARTIFACT" | head -1 | sed 's/.*: *//')"
    base_max_p99="$(json_num "$BASELINE" max_p99_latency_ms || true)"
    SERVE_MAX_P99="${WEBSTRUCT_SERVE_MAX_P99_MS:-${base_max_p99:-50}}"

    # Per-worker-count uncached floors: each swept thread count is gated
    # against its own baseline, so a regression confined to one pool size
    # cannot hide behind the best step. Falls back to the headline floor
    # when either side predates the per-thread keys.
    per_thread_checked=0
    for t in 1 2 4 8; do
        cur_t="$(json_num "$SERVE_ARTIFACT" "rps_t$t" || true)"
        base_t="$(json_num "$BASELINE" "min_rps_t$t" || true)"
        if [[ -n "$cur_t" && -n "$base_t" ]]; then
            per_thread_checked=$((per_thread_checked + 1))
            ok="$(awk -v c="$cur_t" -v f="$base_t" 'BEGIN { print (c >= f) ? 1 : 0 }')"
            if [[ "$ok" == "1" ]]; then
                echo "  OK    rps_t$t: $cur_t >= $base_t"
            else
                echo "  SLOW  rps_t$t: $cur_t < $base_t (uncached replay regressed at $t worker(s))"
                fails=$((fails + 1))
            fi
        fi
    done
    if [[ "$per_thread_checked" == "0" ]]; then
        serve_rps="$(json_num "$SERVE_ARTIFACT" rps)"
        base_min_rps="$(json_num "$BASELINE" min_rps || true)"
        SERVE_MIN_RPS="${WEBSTRUCT_SERVE_MIN_RPS:-${base_min_rps:-2000}}"
        ok="$(awk -v c="$serve_rps" -v f="$SERVE_MIN_RPS" 'BEGIN { print (c >= f) ? 1 : 0 }')"
        if [[ "$ok" == "1" ]]; then
            echo "  OK    rps: $serve_rps >= $SERVE_MIN_RPS (headline fallback; no per-thread keys)"
        else
            echo "  SLOW  rps: $serve_rps < $SERVE_MIN_RPS (replay throughput regressed)"
            fails=$((fails + 1))
        fi
    fi

    # Cached speedup floor: worst ratio across the sweep.
    cur_ratio="$(json_num "$SERVE_ARTIFACT" min_cached_ratio || true)"
    base_ratio="$(json_num "$BASELINE" min_cached_rps_ratio || true)"
    if [[ -n "$cur_ratio" && -n "$base_ratio" ]]; then
        MIN_RATIO="${WEBSTRUCT_SERVE_MIN_CACHED_RATIO:-$base_ratio}"
        ok="$(awk -v c="$cur_ratio" -v f="$MIN_RATIO" 'BEGIN { print (c >= f) ? 1 : 0 }')"
        if [[ "$ok" == "1" ]]; then
            echo "  OK    min_cached_ratio: $cur_ratio >= $MIN_RATIO"
        else
            echo "  SLOW  min_cached_ratio: $cur_ratio < $MIN_RATIO (the response cache no longer pays for itself)"
            fails=$((fails + 1))
        fi
    fi

    # Steady-state heap traffic per cache hit.
    cur_apr="$(json_num "$SERVE_ARTIFACT" allocs_per_request_cached || true)"
    base_apr="$(json_num "$BASELINE" max_allocs_per_request_cached || true)"
    if [[ -n "$cur_apr" && -n "$base_apr" ]]; then
        ok="$(awk -v c="$cur_apr" -v m="$base_apr" 'BEGIN { print (c <= m) ? 1 : 0 }')"
        if [[ "$ok" == "1" ]]; then
            echo "  OK    allocs_per_request_cached: $cur_apr <= $base_apr"
        else
            echo "  SLOW  allocs_per_request_cached: $cur_apr > $base_apr (per-hit allocations crept back in)"
            fails=$((fails + 1))
        fi
    fi

    ok="$(awk -v c="$serve_p99" -v m="$SERVE_MAX_P99" 'BEGIN { print (c <= m) ? 1 : 0 }')"
    if [[ "$ok" == "1" ]]; then
        echo "  OK    p99_latency_ms: $serve_p99 <= $SERVE_MAX_P99"
    else
        echo "  SLOW  p99_latency_ms: $serve_p99 > $SERVE_MAX_P99 (tail latency regressed)"
        fails=$((fails + 1))
    fi
    if [[ "$serve_identical" != "true" ]]; then
        echo "  FAIL  byte_identical: ${serve_identical:-missing} (response bytes diverged across server thread counts)"
        echo "bench_gate: FAIL (serving determinism violation; failing in any mode)"
        exit 1
    fi
    echo "  OK    byte_identical: true"
    # Cached-vs-uncached byte identity: only checked when the artifact
    # records it (older artifacts predate the cache), but a recorded
    # false hard-fails in any mode.
    cached_identical="$(grep -o '"cached_digest_identical": *[a-z]*' "$SERVE_ARTIFACT" | head -1 | sed 's/.*: *//')"
    if [[ -n "$cached_identical" ]]; then
        if [[ "$cached_identical" != "true" ]]; then
            echo "  FAIL  cached_digest_identical: $cached_identical (cache served different bytes than the router)"
            echo "bench_gate: FAIL (cache correctness violation; failing in any mode)"
            exit 1
        fi
        echo "  OK    cached_digest_identical: true"
    fi
fi

if [[ "$fails" -gt 0 ]]; then
    if [[ "$MODE" == "strict" ]]; then
        echo "bench_gate: FAIL ($fails violation(s); strict mode)"
        exit 1
    fi
    echo "bench_gate: WARN ($fails violation(s); set WEBSTRUCT_BENCH_GATE=strict to enforce)"
else
    echo "bench_gate: OK"
fi
