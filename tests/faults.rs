//! The fault-injection layer's contract, end to end:
//!
//! * crawler edge cases under faults — empty seed set, zero fetch
//!   budget, budget exhausted mid-retry, all-sites-dead plans — degrade
//!   to well-defined results (`exhausted` flags, monotone traces,
//!   honest counters) instead of panicking;
//! * the fault-free plan is *provably inert*: `run_with_faults` under
//!   `FaultPlan::none()` equals `run()` field for field;
//! * faulty runs are byte-reproducible at any `WEBSTRUCT_THREADS`
//!   setting — fault decisions are pure functions of `(seed, site,
//!   attempt)`, never of scheduling.

use std::sync::{Mutex, MutexGuard, OnceLock};
use webstruct::core::runner::{run_extensions, write_outputs};
use webstruct::core::study::StudyConfig;
use webstruct::crawl::{crawl, Crawler, Fifo, LargestFirst, SearchIndex};
use webstruct::util::fault::{BreakerConfig, FaultConfig, FaultPlan, RetryPolicy};
use webstruct::util::ids::EntityId;
use webstruct::util::par;
use webstruct::util::rng::Seed;

fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("env lock poisoned")
}

/// Run `f` with `WEBSTRUCT_THREADS` pinned to `threads`.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = env_lock();
    std::env::set_var(par::THREADS_ENV, threads.to_string());
    let out = f();
    std::env::remove_var(par::THREADS_ENV);
    out
}

fn e(id: u32) -> EntityId {
    EntityId::new(id)
}

/// s0: {0,1}, s1: {1,2}, s2: {2,3} — the chain world.
fn chain_world() -> Vec<Vec<EntityId>> {
    vec![vec![e(0), e(1)], vec![e(1), e(2)], vec![e(2), e(3)]]
}

fn run_faulty(
    world: &[Vec<EntityId>],
    n_entities: usize,
    seeds: &[EntityId],
    fetch_budget: usize,
    plan: &FaultPlan,
) -> webstruct::crawl::CrawlResult {
    let index = SearchIndex::build(n_entities, world, None);
    Crawler::new(&index, world, Fifo::default(), seeds).run_with_faults(
        fetch_budget,
        u64::MAX,
        plan,
        RetryPolicy::default(),
        BreakerConfig::default(),
    )
}

#[test]
fn none_plan_reproduces_the_plain_crawl_field_for_field() {
    let world = chain_world();
    let index = SearchIndex::build(4, &world, None);
    let plain = crawl(&index, &world, LargestFirst::default(), &[e(0)], 100);
    let index2 = SearchIndex::build(4, &world, None);
    let faulty = Crawler::new(&index2, &world, LargestFirst::default(), &[e(0)]).run_with_faults(
        100,
        u64::MAX,
        &FaultPlan::none(),
        RetryPolicy::default(),
        BreakerConfig::default(),
    );
    assert_eq!(plain, faulty, "FaultPlan::none() must be inert");
    assert_eq!(plain.fetch.attempts, plain.sites_fetched);
    assert_eq!(plain.fetch.retries, 0);
    assert_eq!(plain.fetch.failed_rounds, 0);
}

#[test]
fn empty_seed_set_exhausts_immediately() {
    let world = chain_world();
    let plan = FaultPlan::new(FaultConfig::flaky(0.5), Seed(1));
    let result = run_faulty(&world, 4, &[], 100, &plan);
    assert_eq!(result.entities_found, 0);
    assert_eq!(result.sites_fetched, 0);
    assert!(result.exhausted, "nothing to do is a drained crawl");
    assert!(result.trace.is_empty());
    assert_eq!(result.fetch.attempts, 0);
}

#[test]
fn zero_fetch_budget_spends_nothing() {
    let world = chain_world();
    let plan = FaultPlan::new(FaultConfig::flaky(0.5), Seed(2));
    let result = run_faulty(&world, 4, &[e(0)], 0, &plan);
    assert_eq!(result.sites_fetched, 0);
    assert_eq!(result.entities_found, 1, "the seed itself is known");
    assert!(!result.exhausted, "the frontier still holds unfetched sites");
    assert_eq!(result.fetch.attempts, 0);
    assert_eq!(result.fetch.sim_ticks, 0);
}

#[test]
fn budget_exhausted_mid_retry_is_charged_honestly() {
    // Every attempt fails; the budget (2) dies inside the first round
    // (1 attempt + up to 3 retries). The spent budget must equal the
    // attempts actually issued, and the round is reported as failed.
    let world = chain_world();
    let plan = FaultPlan::new(
        FaultConfig {
            failure_rate: 1.0,
            ..FaultConfig::none()
        },
        Seed(3),
    );
    let result = run_faulty(&world, 4, &[e(0)], 2, &plan);
    assert_eq!(result.sites_fetched, 2, "both budget units were spent");
    assert_eq!(result.fetch.attempts, 2);
    assert_eq!(result.fetch.ok, 0);
    assert_eq!(result.fetch.retries, 2);
    assert_eq!(result.fetch.failed_rounds, 1);
    assert_eq!(result.entities_found, 1, "no site ever yielded");
    assert!(!result.exhausted);
    // The trace records the failed round: budget moved, knowledge didn't.
    assert_eq!(result.trace, vec![(2, 1)]);
}

#[test]
fn all_sites_dead_discovers_only_seeds_and_trips_breakers() {
    let world = chain_world();
    let plan = FaultPlan::new(
        FaultConfig {
            dead_site_rate: 1.0,
            ..FaultConfig::none()
        },
        Seed(4),
    );
    let result = run_faulty(&world, 4, &[e(0)], 10_000, &plan);
    assert_eq!(result.entities_found, 1, "only the seed");
    assert_eq!(result.fetch.ok, 0);
    assert!(result.fetch.dead_attempts > 0);
    // The seed's site (s0) keeps failing until its breaker opens, after
    // which it is dropped and the crawl drains.
    assert_eq!(result.fetch.breaker_opens, 1);
    assert!(result.exhausted, "breakers drained the frontier");
    assert!(
        result.sites_fetched < 10_000,
        "breakers must stop the budget burn (spent {})",
        result.sites_fetched
    );
}

#[test]
fn traces_stay_monotone_under_any_fault_mix() {
    for (i, rate) in [0.1, 0.3, 0.6, 0.9].iter().enumerate() {
        let plan = FaultPlan::new(FaultConfig::flaky(*rate), Seed(100 + i as u64));
        // A larger random-ish world: one aggregator + chains.
        let mut world: Vec<Vec<EntityId>> = vec![(0..40).map(e).collect()];
        for j in 0..40u32 {
            world.push(vec![e(j), e((j + 1) % 40)]);
        }
        let result = run_faulty(&world, 40, &[e(0)], 200, &plan);
        assert!(
            result.trace.windows(2).all(|w| w[0].0 < w[1].0),
            "budget coordinates strictly increase (rate {rate})"
        );
        assert!(
            result.trace.windows(2).all(|w| w[0].1 <= w[1].1),
            "knowledge never regresses (rate {rate})"
        );
        if let Some(&(spent, known)) = result.trace.last() {
            assert!(spent <= 200);
            assert_eq!(known, result.entities_found);
        }
        // entities_at never exceeds the final count and is monotone.
        let mut prev = 0;
        for budget in [0, 1, 5, 50, 200, 10_000] {
            let at = result.entities_at(budget);
            assert!(at >= prev);
            assert!(at <= result.entities_found);
            prev = at;
        }
    }
}

#[test]
fn seeds_dropped_counts_out_of_range_ids() {
    let world = chain_world();
    let index = SearchIndex::build(4, &world, None);
    let result = Crawler::new(
        &index,
        &world,
        Fifo::default(),
        &[e(0), e(999), e(7), e(1)],
    )
    .run(100);
    assert_eq!(result.seeds_dropped, 2, "e(999) and e(7) are out of range");
    assert_eq!(result.entities_found, 4, "valid seeds still crawl fine");
}

#[test]
fn faulty_crawl_is_deterministic_and_thread_independent() {
    let plan = FaultPlan::new(FaultConfig::flaky(0.3), Seed(55));
    let mut world: Vec<Vec<EntityId>> = vec![(0..30).map(e).collect()];
    for j in 0..30u32 {
        world.push(vec![e(j), e((j + 7) % 30)]);
    }
    let baseline = with_threads(1, || run_faulty(&world, 30, &[e(3)], 150, &plan));
    for threads in [1, 8] {
        let again = with_threads(threads, || run_faulty(&world, 30, &[e(3)], 150, &plan));
        assert_eq!(
            again, baseline,
            "faulty crawl diverged at {threads} threads"
        );
    }
}

#[test]
fn run_extensions_with_fault_experiment_is_identical_across_thread_counts() {
    // The extensions run includes discovery_under_failure — the full
    // fault pipeline — and fans families across worker threads. Output
    // must be byte-identical at every thread count.
    let cfg = StudyConfig::quick();
    let baseline = with_threads(1, || run_extensions(&cfg));
    assert!(baseline.is_complete());
    assert_eq!(baseline.figures.len(), 3);
    assert_eq!(baseline.tables.len(), 3);
    for threads in [2, 8] {
        let parallel = with_threads(threads, || run_extensions(&cfg));
        assert_eq!(
            parallel.figures, baseline.figures,
            "figures diverged at {threads} threads"
        );
        assert_eq!(
            parallel.tables, baseline.tables,
            "tables diverged at {threads} threads"
        );
        assert!(parallel.failures.is_empty());
    }
}

#[test]
fn degraded_artifacts_are_byte_reproducible_too() {
    // A chaos run (one family killed) must still be deterministic: same
    // surviving figures, same degradation report, at 1 and 8 threads.
    let cfg = StudyConfig::quick();
    let a = with_threads(1, || {
        webstruct::core::runner::run_extensions_chaos(&cfg, Some("ext-redundancy"))
    });
    let b = with_threads(8, || {
        webstruct::core::runner::run_extensions_chaos(&cfg, Some("ext-redundancy"))
    });
    assert_eq!(a.figures, b.figures);
    assert_eq!(a.tables, b.tables);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.failures.len(), 1);
    assert_eq!(a.failures[0].family, "ext-redundancy");
    // And writing them produces the DEGRADED.md report.
    let dir = std::env::temp_dir().join("webstruct-test-faults-degraded");
    let _ = std::fs::remove_dir_all(&dir);
    write_outputs(&dir, &a).expect("degradation is not an I/O error");
    let report = std::fs::read_to_string(dir.join("DEGRADED.md")).expect("report exists");
    assert!(report.contains("ext-redundancy"));
    let _ = std::fs::remove_dir_all(&dir);
}
