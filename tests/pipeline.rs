//! Cross-crate integration: the full extraction pipeline must reproduce
//! the oracle relations on every domain, and experiments must be
//! deterministic end to end.

use webstruct::core::runner::run_all;
use webstruct::core::study::{DataSource, DomainStudy, StudyConfig};
use webstruct::corpus::domain::{Attribute, Domain};
use webstruct::util::rng::Seed;

fn tiny() -> StudyConfig {
    StudyConfig::quick().with_scale(0.02)
}

#[test]
fn extraction_equals_oracle_for_every_domain_and_attribute() {
    let cfg = tiny();
    let extracted_cfg = cfg.clone().with_source(DataSource::Extracted);
    for domain in Domain::ALL {
        let study = DomainStudy::generate(domain, &cfg);
        for &attr in domain.attributes() {
            if attr == Attribute::Review {
                continue; // classifier-based; checked separately below
            }
            let oracle = study.occurrence_lists(attr, &cfg);
            let extracted = study.occurrence_lists(attr, &extracted_cfg);
            assert_eq!(
                oracle, extracted,
                "{domain} {attr}: extracted relation diverges from oracle"
            );
        }
    }
}

#[test]
fn review_extraction_has_high_recall_and_precision() {
    let cfg = tiny();
    let extracted_cfg = cfg.clone().with_source(DataSource::Extracted);
    let study = DomainStudy::generate(Domain::Restaurants, &cfg);
    let oracle = study.review_page_lists(&cfg);
    let extracted = study.review_page_lists(&extracted_cfg);
    let total = |lists: &[Vec<(webstruct::util::EntityId, u32)>]| -> u64 {
        lists
            .iter()
            .flat_map(|l| l.iter().map(|&(_, c)| u64::from(c)))
            .sum()
    };
    let (t_oracle, t_extracted) = (total(&oracle), total(&extracted));
    assert!(t_oracle > 0);
    let ratio = t_extracted as f64 / t_oracle as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "review pages: oracle {t_oracle}, extracted {t_extracted}"
    );
    // Pairwise: almost every oracle (site, entity) pair is recovered.
    let pairs = |lists: &[Vec<(webstruct::util::EntityId, u32)>]| {
        lists
            .iter()
            .enumerate()
            .flat_map(|(s, l)| l.iter().map(move |&(e, _)| (s, e)))
            .collect::<std::collections::HashSet<_>>()
    };
    let (p_oracle, p_extracted) = (pairs(&oracle), pairs(&extracted));
    let recovered = p_oracle.intersection(&p_extracted).count();
    assert!(
        recovered as f64 >= 0.9 * p_oracle.len() as f64,
        "recovered {recovered} of {}",
        p_oracle.len()
    );
}

#[test]
fn run_all_is_deterministic() {
    let cfg = tiny();
    let a = run_all(&cfg);
    let b = run_all(&cfg);
    assert_eq!(a.figures.len(), b.figures.len());
    for (x, y) in a.figures.iter().zip(&b.figures) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.series.len(), y.series.len());
        for (sx, sy) in x.series.iter().zip(&y.series) {
            assert_eq!(sx.points, sy.points, "figure {} series {}", x.id, sx.name);
        }
    }
    for (tx, ty) in a.tables.iter().zip(&b.tables) {
        assert_eq!(tx.rows, ty.rows);
    }
}

#[test]
fn different_seeds_produce_different_worlds() {
    let a = run_all(&tiny());
    let b = run_all(&tiny().with_seed(Seed(0xDEADBEEF)));
    // Same structure...
    assert_eq!(a.figures.len(), b.figures.len());
    // ...different numbers somewhere.
    let differs = a
        .figures
        .iter()
        .zip(&b.figures)
        .any(|(x, y)| x.series.iter().zip(&y.series).any(|(sx, sy)| sx.points != sy.points));
    assert!(differs, "independent seeds must change measured values");
}

#[test]
fn table2_metrics_agree_between_sources() {
    // Even the graph metrics — the most derived artifact — must coincide
    // between oracle and extracted relations.
    use webstruct::graph::{component_stats, BipartiteGraph};
    let cfg = tiny();
    let extracted_cfg = cfg.clone().with_source(DataSource::Extracted);
    let study = DomainStudy::generate(Domain::Schools, &cfg);
    for attr in [Attribute::Phone, Attribute::Homepage] {
        let a = study.occurrence_lists(attr, &cfg);
        let b = study.occurrence_lists(attr, &extracted_cfg);
        let ga = BipartiteGraph::from_occurrences(study.catalog.len(), &a).unwrap();
        let gb = BipartiteGraph::from_occurrences(study.catalog.len(), &b).unwrap();
        assert_eq!(ga.n_edges(), gb.n_edges());
        assert_eq!(component_stats(&ga, &[]), component_stats(&gb, &[]));
    }
}

#[test]
fn oracle_and_extracted_coverage_figures_agree() {
    // Not just the relations: the derived figures must coincide too.
    let cfg = tiny();
    let oracle = run_all(&cfg);
    let extracted = run_all(&cfg.clone().with_source(DataSource::Extracted));
    for id in ["fig1a", "fig2c", "fig3"] {
        let fo = oracle.figure(id).unwrap();
        let fe = extracted.figure(id).unwrap();
        for (so, se) in fo.series.iter().zip(&fe.series) {
            assert_eq!(so.points, se.points, "{id}/{}", so.name);
        }
    }
}
