//! The serving layer's contract, locked down over real sockets:
//!
//! * every endpoint's `(status, content-type, body)` is byte-identical
//!   across `WEBSTRUCT_THREADS ∈ {1, 2, 8}` — worker count changes
//!   scheduling, never bytes;
//! * a fixed endpoint sweep's combined digest is pinned in
//!   `tests/SERVE.sha256` (re-bless with `scripts/bless.sh` after an
//!   intentional output change);
//! * the HTTP/1.1 parser maps every adversarial input — torn reads, bad
//!   methods/versions, oversized heads, bodies, pipelining — onto its
//!   exact error-taxonomy variant, never a panic;
//! * a chaotic client population (driven by `webstruct_util::fault`)
//!   cannot break the connection-accounting invariant: after drain,
//!   every accepted connection is in exactly one `closed_*` bucket;
//! * replaying the same seed-pure `RequestPlan` against servers at
//!   different thread counts produces the same order-independent
//!   response digest;
//! * the hot-path response cache serves the router's exact bytes (the
//!   endpoint sweep is identical with the cache on and off);
//! * `ETag`/`If-None-Match` revalidation draws a 304 on a match, a full
//!   200 on a stale or malformed validator, in both cache modes;
//! * a live epoch hot-swap partitions responses cleanly: every response
//!   matches a cold server pinned at the epoch its `ETag` names, at any
//!   worker count, with a chaos client hammering through the window.
//!
//! Tests that publish metrics or mutate `WEBSTRUCT_THREADS` serialise
//! through the same process-wide env lock as `tests/determinism.rs`.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;
use webstruct::core::epoch::Epoch;
use webstruct::core::study::StudyConfig;
use webstruct::corpus::domain::Domain;
use webstruct::demand::model::{StudySite, TrafficConfig};
use webstruct::demand::traffic::RequestPlan;
use webstruct::serve::{
    fetch, fetch_with, replay, Connection, EpochManager, ReplayOptions, ServeConfig, ServeEpoch,
    ServeState, Server, SharedServing,
};
use webstruct::util::fault::{Fault, FaultConfig, FaultPlan};
use webstruct::util::obs;
use webstruct::util::rng::Seed;
use webstruct::util::sha::Sha256;

fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // A panic under the lock (one failing test) must not cascade into
    // poison panics in every other serialised test.
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Run `f` with `WEBSTRUCT_THREADS` pinned to `threads`.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = env_lock();
    std::env::set_var(webstruct::util::par::THREADS_ENV, threads.to_string());
    let out = f();
    std::env::remove_var(webstruct::util::par::THREADS_ENV);
    out
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "webstruct-serve-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The fixture config every serving test builds state at: small corpus,
/// fixed seed, so state builds in well under a second and every run is
/// bit-reproducible.
fn fixture_config() -> StudyConfig {
    StudyConfig::quick().with_scale(0.02)
}

/// Build fresh (cold-store) serving state in its own temp directory. A
/// cold store every time keeps `/coverage`'s cache-hit counters — part
/// of the response body — identical across runs.
fn fixture_state(tag: &str, threads: usize) -> (Arc<ServeState>, PathBuf) {
    let dir = tmpdir(tag);
    let state = ServeState::build(Domain::Restaurants, fixture_config(), &dir, threads)
        .expect("serve state builds");
    (Arc::new(state), dir)
}

/// Stop `server` via its own control endpoint and return drained stats.
fn stop(server: Server) -> webstruct::serve::ServeStats {
    let addr = server.local_addr();
    let resp = fetch(addr, "POST", "/shutdown").expect("shutdown request");
    assert_eq!(resp.status, 200);
    server.join()
}

/// The endpoint sweep every determinism/golden test walks, with the
/// status each target must answer — 2xx data paths and each arm of the
/// router's error taxonomy.
const SWEEP: &[(&str, u16)] = &[
    ("/", 200),
    ("/entity/0", 200),
    ("/entity/3", 200),
    ("/entity/banana", 400),
    ("/entity/999999999", 404),
    ("/entity?phone=xyz", 400),
    ("/sites", 200),
    ("/site/0", 200),
    ("/site/999999999", 404),
    ("/coverage", 200),
    ("/coverage.csv", 200),
    ("/demand/yelp/search.csv", 200),
    ("/demand/yelp/browse.csv", 200),
    ("/demand/imdb/search.csv", 200),
    ("/demand/amazon/browse.csv", 200),
    ("/demand/nosuch/search.csv", 404),
    ("/figures", 200),
    ("/figure/serve-coverage.csv", 200),
    ("/figure/nope.csv", 404),
    ("/nothing/here", 404),
    ("/shutdown", 405),    // GET to the POST-only control endpoint
    ("/admin/epoch", 405), // GET to the POST-only hot-swap endpoint
];

/// Fetch every sweep target over one keep-alive connection and return
/// one digest line per target: `target status content-type sha256(body)`.
fn sweep_digests(addr: SocketAddr) -> Vec<String> {
    let mut conn = Connection::new(addr);
    SWEEP
        .iter()
        .map(|&(target, want)| {
            let resp = conn.get(target).expect("sweep request");
            assert_eq!(resp.status, want, "{target}");
            let mut h = Sha256::new();
            h.update(&resp.body);
            let digest = h.finalize();
            let mut hex = String::with_capacity(64);
            for b in digest {
                hex.push_str(&format!("{b:02x}"));
            }
            format!("{target} {} {} {hex}", resp.status, resp.content_type)
        })
        .collect()
}

#[test]
fn endpoints_are_byte_identical_across_thread_counts() {
    // Build-and-serve at each WEBSTRUCT_THREADS — the operator knob
    // drives both the extraction pipeline and the default worker count —
    // and require identical response digests for the whole sweep.
    let run_at = |threads: usize| {
        with_threads(threads, || {
            let (state, dir) = fixture_state(&format!("sweep-t{threads}"), threads);
            let server = Server::start(state, &ServeConfig::default(), "127.0.0.1:0")
                .expect("server binds");
            let digests = sweep_digests(server.local_addr());
            let stats = stop(server);
            assert!(stats.is_consistent(), "stats inconsistent: {stats:?}");
            let _ = std::fs::remove_dir_all(&dir);
            digests
        })
    };
    let baseline = run_at(1);
    for threads in [2usize, 8] {
        let digests = run_at(threads);
        assert_eq!(
            digests, baseline,
            "endpoint bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn serve_golden_digest_matches_blessed() {
    // The combined sweep digest of the fixed fixture, pinned on disk:
    // any change to a served byte anywhere in the resource tree must be
    // an intentional, blessed change.
    let lines = with_threads(2, || {
        let (state, dir) = fixture_state("golden", 2);
        let server =
            Server::start(state, &ServeConfig::default(), "127.0.0.1:0").expect("server binds");
        let lines = sweep_digests(server.local_addr());
        let stats = stop(server);
        assert!(stats.is_consistent(), "stats inconsistent: {stats:?}");
        let _ = std::fs::remove_dir_all(&dir);
        lines
    });
    let mut h = Sha256::new();
    for line in &lines {
        h.update(line.as_bytes());
        h.update(b"\n");
    }
    let digest = h.finalize();
    let mut hex = String::with_capacity(64);
    for b in digest {
        hex.push_str(&format!("{b:02x}"));
    }

    let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/SERVE.sha256");
    if std::env::var("WEBSTRUCT_BLESS").is_ok() {
        std::fs::write(&golden_path, format!("{hex}\n")).expect("bless serve golden");
        return;
    }
    let blessed = std::fs::read_to_string(&golden_path)
        .expect("tests/SERVE.sha256 missing — run scripts/bless.sh");
    assert_eq!(
        blessed.trim(),
        hex,
        "served bytes changed; if intentional, re-bless with scripts/bless.sh\nsweep:\n{}",
        lines.join("\n")
    );
}

#[test]
fn metrics_tail_is_identical_across_thread_counts() {
    // `/metrics` serves the RUN_REPORT shape: spans and gauges are
    // wall-clock and legitimately vary, but the final `"metrics"` key —
    // counters and histograms — is the deterministic tail, and must not
    // depend on the worker count. One keep-alive connection issues a
    // fixed request sequence so the `serve.*` counters at publish time
    // are a pure function of the stream.
    let tail_at = |threads: usize| {
        with_threads(threads, || {
            let (state, dir) = fixture_state(&format!("metrics-t{threads}"), threads);
            obs::metrics().reset();
            let server = Server::start(state, &ServeConfig::default(), "127.0.0.1:0")
                .expect("server binds");
            let mut conn = Connection::new(server.local_addr());
            for target in ["/", "/coverage", "/entity/1"] {
                assert_eq!(conn.get(target).expect("warmup request").status, 200);
            }
            let resp = conn.get("/metrics").expect("metrics request");
            assert_eq!(resp.status, 200);
            drop(conn);
            let body = resp.text();
            // The hit-rate gauge lives with the other gauges (wall-clock
            // section, excluded from the deterministic tail) but must be
            // present in every publish.
            assert!(
                body.contains("serve.cache.hit_rate_bp"),
                "hit-rate gauge missing: {body}"
            );
            let tail_pos = body.rfind("\"metrics\":").expect("metrics key present");
            let tail = body[tail_pos..].to_string();
            let stats = stop(server);
            assert!(stats.is_consistent(), "stats inconsistent: {stats:?}");
            let _ = std::fs::remove_dir_all(&dir);
            tail
        })
    };
    let baseline = tail_at(1);
    assert!(baseline.contains("serve.requests"), "tail: {baseline}");
    assert!(baseline.contains("serve.accepted"), "tail: {baseline}");
    assert!(baseline.contains("serve.cache.hits"), "tail: {baseline}");
    assert!(baseline.contains("serve.cache.misses"), "tail: {baseline}");
    assert!(
        baseline.contains("serve.cache.revalidations"),
        "tail: {baseline}"
    );
    assert!(baseline.contains("serve.cache.swaps"), "tail: {baseline}");
    for threads in [2usize, 8] {
        assert_eq!(
            tail_at(threads),
            baseline,
            "metrics tail diverged at {threads} threads"
        );
    }
}

/// Write `head` on a fresh socket and read until EOF; the server closes
/// after an error response, so this captures the full wire reply.
fn raw_roundtrip(addr: SocketAddr, head: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // The server may answer (and close) before the full head is written
    // — e.g. the oversized-head rejection — so a write error is fine.
    let _ = s.write_all(head);
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn adversarial_inputs_map_to_exact_taxonomy() {
    let _guard = env_lock();
    let (state, dir) = fixture_state("adversarial", 2);
    let config = ServeConfig {
        threads: 2,
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let server = Server::start(state, &config, "127.0.0.1:0").expect("server binds");
    let addr = server.local_addr();

    // Each malformed head must draw its exact taxonomy arm — status and
    // machine-readable slug — and the server must keep running.
    let reply = raw_roundtrip(addr, b"FROB / HTTP/1.1\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 405 "), "reply: {reply}");
    assert!(reply.contains("method_unsupported"), "reply: {reply}");

    let reply = raw_roundtrip(addr, b"GET / HTTP/9.9\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 505 "), "reply: {reply}");
    assert!(reply.contains("version_unsupported"), "reply: {reply}");

    let huge = format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(64 * 1024));
    let reply = raw_roundtrip(addr, huge.as_bytes());
    assert!(reply.starts_with("HTTP/1.1 431 "), "reply: {reply}");
    assert!(reply.contains("head_too_large"), "reply: {reply}");

    let reply = raw_roundtrip(addr, b"complete garbage\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 400 "), "reply: {reply}");
    assert!(reply.contains("bad_request_line"), "reply: {reply}");

    let reply = raw_roundtrip(addr, b"GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
    assert!(reply.starts_with("HTTP/1.1 413 "), "reply: {reply}");
    assert!(reply.contains("body_unsupported"), "reply: {reply}");

    let reply = raw_roundtrip(addr, b"GET / HTTP/1.1\r\nBad Header Name: x\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 400 "), "reply: {reply}");
    assert!(reply.contains("bad_header"), "reply: {reply}");

    // Two pipelined requests in one write must draw two responses.
    let reply = raw_roundtrip(
        addr,
        b"GET /sites HTTP/1.1\r\n\r\nGET /coverage HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(
        reply.matches("HTTP/1.1 200 ").count(),
        2,
        "pipelined reply: {reply}"
    );

    // A request torn at every byte boundary must still parse to 200.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.set_nodelay(true).unwrap();
        for &b in b"GET /sites HTTP/1.1\r\nConnection: close\r\n\r\n".iter() {
            s.write_all(&[b]).expect("torn write");
            s.flush().expect("flush");
        }
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let reply = String::from_utf8_lossy(&out);
        assert!(reply.starts_with("HTTP/1.1 200 "), "torn reply: {reply}");
    }

    let stats = stop(server);
    assert!(stats.is_consistent(), "stats inconsistent: {stats:?}");
    assert_eq!(stats.parse_errors, 6, "one per malformed head: {stats:?}");
    assert_eq!(stats.requests, 4, "sites+coverage+torn+shutdown: {stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaotic_clients_cannot_break_the_accounting_invariant() {
    // Drive a fault-plan-scripted population of misbehaving clients at
    // the server — slow-loris stalls, truncated heads, mid-response
    // disconnects, connect-and-vanish — and require that the pool
    // recovers (a clean request still answers) and that the final stats
    // account for every accepted connection exactly once.
    let _guard = env_lock();
    let (state, dir) = fixture_state("chaos", 2);
    let config = ServeConfig {
        threads: 2,
        read_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    };
    let server = Server::start(state, &config, "127.0.0.1:0").expect("server binds");
    let addr = server.local_addr();

    let plan = FaultPlan::new(FaultConfig::flaky(0.6), Seed::DEFAULT.derive("serve-chaos"));
    let mut attempted = 0u64; // connections we actually opened
    let mut stalled = 0u64; // slow-loris clients (must close as timeout)
    let mut truncated = 0u64; // mid-head FINs (must close as error)
    let mut chaos_round = |fault: Option<Fault>| match fault {
        None => {
            let resp = fetch(addr, "GET", "/coverage").expect("clean request");
            assert_eq!(resp.status, 200);
            attempted += 1;
        }
        Some(Fault::Transient) => {
            // Connect and vanish without a byte: an idle EOF, clean close.
            let s = TcpStream::connect(addr).expect("connect");
            drop(s);
            attempted += 1;
        }
        Some(Fault::Timeout) => {
            // Slow loris: a partial head, then silence past the read
            // deadline.
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"GET /cover").expect("partial write");
            std::thread::sleep(Duration::from_millis(250));
            drop(s);
            attempted += 1;
            stalled += 1;
        }
        Some(Fault::Truncated(_)) => {
            // A clean FIN mid-head: the request can never complete.
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"GET /sites HT").expect("partial write");
            drop(s);
            // Give the worker time to observe the EOF before the next
            // chaos round competes for the 2-worker pool.
            std::thread::sleep(Duration::from_millis(30));
            attempted += 1;
            truncated += 1;
        }
        Some(Fault::RateLimited) => {
            // Mid-response disconnect: send a real request, read a few
            // bytes of the reply, hang up.
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"GET /coverage.csv HTTP/1.1\r\nConnection: close\r\n\r\n")
                .expect("write");
            let mut first = [0u8; 16];
            let _ = s.read(&mut first);
            drop(s);
            attempted += 1;
        }
        Some(Fault::Dead) => {} // this client never connects
    };
    // One deterministic instance of each behaviour, then the seeded mix.
    chaos_round(Some(Fault::Timeout));
    chaos_round(Some(Fault::Truncated(0.5)));
    for i in 0..24usize {
        chaos_round(plan.fault(i, 0));
    }

    // Pool recovery: after all that, a well-formed request still answers.
    let resp = fetch(addr, "GET", "/sites").expect("post-chaos request");
    assert_eq!(resp.status, 200);
    attempted += 1;

    let stats = stop(server);
    attempted += 1; // the shutdown POST's own connection
    assert!(stats.is_consistent(), "stats inconsistent: {stats:?}");
    assert_eq!(stats.accepted, attempted, "{stats:?}");
    assert!(
        stats.closed_timeout >= stalled.min(1),
        "slow-loris clients must land in closed_timeout: {stats:?}"
    );
    assert!(
        stats.closed_error >= truncated.min(1),
        "truncated heads must land in closed_error: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_digest_is_identical_across_server_thread_counts() {
    // The end-to-end determinism check: the same seed-pure request plan,
    // replayed over real sockets against servers running 1 vs 4 workers,
    // must fold to the same order-independent response digest — and a
    // second replay against the same server must reproduce it too.
    let _guard = env_lock();
    let config = fixture_config();
    let plan_config = TrafficConfig::preset(StudySite::Amazon).scaled(config.scale);
    let opts = ReplayOptions {
        clients: 3,
        requests: 400,
    };

    let run_at = |server_threads: usize, tag: &str, twice: bool| {
        let (state, dir) = fixture_state(tag, 2);
        let plan = RequestPlan::new(&plan_config, state.catalog.len(), config.seed);
        let server = Server::start(
            state,
            &ServeConfig {
                threads: server_threads,
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("server binds");
        let report = replay(server.local_addr(), &plan, &opts);
        assert_eq!(report.errors, 0, "transport errors: {report:?}");
        assert_eq!(report.ok + report.rejected, 400);
        if twice {
            let again = replay(server.local_addr(), &plan, &opts);
            assert_eq!(again.digest, report.digest, "replay must reproduce itself");
        }
        let stats = stop(server);
        assert!(stats.is_consistent(), "stats inconsistent: {stats:?}");
        let _ = std::fs::remove_dir_all(&dir);
        report
    };

    let t1 = run_at(1, "replay-t1", true);
    let t4 = run_at(4, "replay-t4", false);
    assert_eq!(
        t1.digest, t4.digest,
        "replay digest diverged across server thread counts"
    );
    assert!(t1.ok > 0, "the plan must include servable requests");
}

#[test]
fn sweep_bytes_identical_with_cache_on_and_off() {
    // The hot-path cache's core promise: a hit serves the router's exact
    // bytes. The full endpoint sweep — data paths and error arms — must
    // digest identically with the cache enabled and disabled.
    let _guard = env_lock();
    let run = |cache: bool, tag: &str| {
        let (state, dir) = fixture_state(tag, 2);
        let server = Server::start(
            state,
            &ServeConfig {
                threads: 2,
                cache,
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("server binds");
        let digests = sweep_digests(server.local_addr());
        let stats = stop(server);
        assert!(stats.is_consistent(), "stats inconsistent: {stats:?}");
        if cache {
            assert!(stats.cache_hits > 0, "sweep should hit the cache: {stats:?}");
        } else {
            assert_eq!(stats.cache_hits, 0, "cache disabled must not hit: {stats:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
        digests
    };
    assert_eq!(
        run(true, "sweep-cached"),
        run(false, "sweep-uncached"),
        "cached bytes diverged from the router's"
    );
}

#[test]
fn etag_revalidation_over_real_sockets() {
    // ETag/If-None-Match semantics, in both cache modes (the 304 layer
    // is server-level, independent of the response cache): a matching
    // validator draws an empty-body 304 carrying the same tag; list and
    // wildcard forms match; a malformed or stale validator is a miss and
    // draws the full 200; error responses carry no validator.
    let _guard = env_lock();
    for cache in [true, false] {
        let (state, dir) = fixture_state(&format!("etag-cache-{cache}"), 2);
        let server = Server::start(
            state,
            &ServeConfig {
                threads: 2,
                cache,
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("server binds");
        let addr = server.local_addr();

        let first = fetch(addr, "GET", "/coverage").expect("first fetch");
        assert_eq!(first.status, 200);
        assert!(
            first.etag.starts_with('"') && first.etag.ends_with('"'),
            "etag must be a quoted validator: {:?}",
            first.etag
        );
        assert!(!first.body.is_empty());

        let not_modified =
            fetch_with(addr, "GET", "/coverage", Some(&first.etag)).expect("conditional fetch");
        assert_eq!(not_modified.status, 304, "matching validator → 304");
        assert!(not_modified.body.is_empty(), "304 must carry no body");
        assert_eq!(not_modified.etag, first.etag, "304 repeats the tag");

        let listed = fetch_with(
            addr,
            "GET",
            "/coverage",
            Some(&format!("\"stale-tag\", {}", first.etag)),
        )
        .expect("list-form conditional");
        assert_eq!(listed.status, 304, "validator list containing the tag → 304");
        let wildcard = fetch_with(addr, "GET", "/coverage", Some("*")).expect("wildcard");
        assert_eq!(wildcard.status, 304, "wildcard validator → 304");

        let malformed =
            fetch_with(addr, "GET", "/coverage", Some("W/\"unterminated")).expect("malformed");
        assert_eq!(malformed.status, 200, "malformed validator is a miss");
        assert_eq!(malformed.body, first.body, "miss serves the full bytes");
        assert_eq!(malformed.etag, first.etag);

        let err = fetch_with(addr, "GET", "/entity/banana", Some(&first.etag)).expect("error");
        assert_eq!(err.status, 400);
        assert!(err.etag.is_empty(), "errors carry no validator");

        let stats = stop(server);
        assert!(stats.is_consistent(), "stats inconsistent: {stats:?}");
        assert_eq!(stats.resp_3xx, 3, "three 304s: {stats:?}");
        assert_eq!(
            stats.cache_revalidations, 3,
            "each 304 is one revalidation in either mode: {stats:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The fixed target walk the hot-swap test replays: cached routes,
/// slab-cached entity cards and a figure CSV.
const SWAP_TARGETS: &[&str] = &[
    "/",
    "/sites",
    "/coverage",
    "/coverage.csv",
    "/entity/1",
    "/entity/3",
    "/demand/yelp/search.csv",
    "/figure/serve-coverage.csv",
];

/// Mutation the hot-swap test applies, mirrored by the cold oracle.
const SWAP_FRACTION_BP: u64 = 500;
const SWAP_SEED: u64 = 7;

/// Fetch every swap target from a cold server pinned at epoch 0 (or, if
/// `mutated`, at epoch 1 via the same mutation the live swap applies)
/// and return `(target → (status, body), etag)`. The mutated oracle
/// replays the live server's exact store history — build epoch 0 state,
/// then mutate and rebuild — because `/coverage` reports the epoch
/// store's own cache counters as part of its body.
fn cold_oracle(tag: &str, mutated: bool) -> (BTreeMap<String, (u16, Vec<u8>)>, String) {
    let dir = tmpdir(tag);
    let mut epoch = Epoch::new(Domain::Restaurants, fixture_config());
    if mutated {
        let _ = ServeState::from_epoch(&epoch, &dir, 2).expect("epoch-0 state builds");
        #[allow(clippy::cast_precision_loss)]
        let fraction = SWAP_FRACTION_BP as f64 / 10_000.0;
        epoch.mutate(fraction, Seed(SWAP_SEED));
    }
    let state = ServeState::from_epoch(&epoch, &dir, 2).expect("oracle state builds");
    let server = Server::start(
        Arc::new(state),
        &ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("oracle server binds");
    let mut conn = Connection::new(server.local_addr());
    let mut map = BTreeMap::new();
    let mut etag = String::new();
    for &target in SWAP_TARGETS {
        let resp = conn.get(target).expect("oracle fetch");
        assert_eq!(resp.status, 200, "{target}");
        etag = resp.etag.clone();
        map.insert(target.to_string(), (resp.status, resp.body));
    }
    drop(conn);
    let stats = stop(server);
    assert!(stats.is_consistent(), "oracle stats inconsistent: {stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
    (map, etag)
}

#[test]
fn hot_swap_responses_match_cold_restarts_at_each_epoch() {
    // The hot-swap correctness oracle: every response a live-swapping
    // server produces must be byte-identical to a cold server pinned at
    // the epoch the response's ETag names — before, during and after the
    // swap window, at any worker count, with a chaos client misbehaving
    // through the window. Snapshot isolation means there is no third
    // possibility: a response is wholly epoch 0 or wholly epoch 1.
    let (oracle0, etag0) = with_threads(2, || cold_oracle("swap-oracle0", false));
    let (oracle1, etag1) = with_threads(2, || cold_oracle("swap-oracle1", true));
    assert_ne!(etag0, etag1, "the mutation must change the epoch tag");

    for threads in [1usize, 2, 8] {
        with_threads(threads, || {
            let dir = tmpdir(&format!("swap-live-t{threads}"));
            let epoch = Epoch::new(Domain::Restaurants, fixture_config());
            let state =
                ServeState::from_epoch(&epoch, &dir, threads).expect("live state builds");
            let shared = Arc::new(SharedServing::new(ServeEpoch::new(Arc::new(state))));
            let manager = Arc::new(EpochManager::new(epoch, dir.clone(), threads));
            let server = Server::start_with(
                shared,
                Some(manager),
                &ServeConfig {
                    threads,
                    ..ServeConfig::default()
                },
                "127.0.0.1:0",
            )
            .expect("live server binds");
            let addr = server.local_addr();

            // A chaos client hammers the server for the whole test,
            // including the swap window: stalls, truncated heads,
            // connect-and-vanish, mid-response hangups.
            let stop_chaos = Arc::new(AtomicBool::new(false));
            let chaos = {
                let stop_chaos = Arc::clone(&stop_chaos);
                std::thread::spawn(move || {
                    let plan =
                        FaultPlan::new(FaultConfig::flaky(0.6), Seed::DEFAULT.derive("swap-chaos"));
                    let mut i = 0usize;
                    while !stop_chaos.load(Ordering::Relaxed) {
                        match plan.fault(i, 0) {
                            None | Some(Fault::RateLimited) => {
                                let mut s = TcpStream::connect(addr).expect("chaos connect");
                                let _ = s.write_all(
                                    b"GET /coverage HTTP/1.1\r\nConnection: close\r\n\r\n",
                                );
                                let mut first = [0u8; 32];
                                let _ = s.read(&mut first);
                            }
                            Some(Fault::Transient | Fault::Dead) => {
                                drop(TcpStream::connect(addr));
                            }
                            Some(Fault::Timeout | Fault::Truncated(_)) => {
                                let mut s = TcpStream::connect(addr).expect("chaos connect");
                                let _ = s.write_all(b"GET /cover");
                                std::thread::sleep(Duration::from_millis(5));
                            }
                        }
                        i += 1;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                })
            };

            let mut recorded: Vec<(String, u16, Vec<u8>, String)> = Vec::new();
            let mut conn = Connection::new(addr);
            let walk = |recorded: &mut Vec<(String, u16, Vec<u8>, String)>,
                            conn: &mut Connection| {
                for &target in SWAP_TARGETS {
                    let resp = conn.get(target).expect("live fetch");
                    recorded.push((target.to_string(), resp.status, resp.body, resp.etag));
                }
            };
            // Pass A: wholly pre-swap.
            walk(&mut recorded, &mut conn);
            // Trigger the swap, then keep requesting through the rebuild
            // window — these land on whichever epoch is current.
            let trigger = fetch(
                addr,
                "POST",
                &format!("/admin/epoch?fraction_bp={SWAP_FRACTION_BP}&seed={SWAP_SEED}"),
            )
            .expect("swap trigger");
            assert_eq!(trigger.status, 200, "{}", trigger.text());
            assert!(trigger.text().contains("\"swap_started\": true"));
            walk(&mut recorded, &mut conn);
            // Wait for the publish, then a wholly post-swap pass.
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            while server.stats().cache_swaps == 0 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "swap did not publish within 30s"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            walk(&mut recorded, &mut conn);

            // A stale validator (epoch 0's tag) now draws the fresh 200;
            // the new tag revalidates to 304.
            let stale = fetch_with(addr, "GET", "/coverage", Some(&etag0)).expect("stale");
            assert_eq!(stale.status, 200, "stale validator after swap → full 200");
            assert_eq!(stale.etag, etag1, "fresh response carries the new tag");
            let fresh = fetch_with(addr, "GET", "/coverage", Some(&etag1)).expect("fresh");
            assert_eq!(fresh.status, 304, "current validator → 304");
            drop(conn);

            stop_chaos.store(true, Ordering::Relaxed);
            chaos.join().expect("chaos client");
            let stats = stop(server);
            assert!(stats.is_consistent(), "stats inconsistent: {stats:?}");
            assert_eq!(stats.cache_swaps, 1, "exactly one publish: {stats:?}");
            let _ = std::fs::remove_dir_all(&dir);

            // Every recorded response must match the cold oracle at the
            // epoch its ETag names, and both epochs must have been seen.
            let mut seen0 = 0usize;
            let mut seen1 = 0usize;
            for (target, status, body, etag) in &recorded {
                let oracle = if *etag == etag0 {
                    seen0 += 1;
                    &oracle0
                } else if *etag == etag1 {
                    seen1 += 1;
                    &oracle1
                } else {
                    panic!("response tagged with unknown epoch {etag:?} for {target}");
                };
                let (want_status, want_body) =
                    oracle.get(target).expect("target in oracle");
                assert_eq!(status, want_status, "{target} @ {etag}");
                assert_eq!(
                    body, want_body,
                    "{target} bytes diverged from the cold restart at {etag}"
                );
            }
            assert!(seen0 > 0, "no pre-swap responses recorded at {threads} threads");
            assert!(seen1 > 0, "no post-swap responses recorded at {threads} threads");
        });
    }
}
