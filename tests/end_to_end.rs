//! The full downstream story in one test file: generate a world, discover
//! its sites with the budgeted crawler, track coverage online, extract,
//! fuse, and deduplicate — every substrate cooperating.

use webstruct::core::study::{DomainStudy, StudyConfig};
use webstruct::corpus::domain::{Attribute, Domain};
use webstruct::coverage::StreamingCoverage;
use webstruct::crawl::{crawl, LargestFirst, SearchIndex};
use webstruct::dedup::{dedup_and_evaluate, generate_records, Blocking, MatchConfig, VariantModel};
use webstruct::fuse::{evaluate, ClaimSet, ErrorModel, MajorityVote};
use webstruct::util::ids::EntityId;
use webstruct::util::rng::Seed;

#[test]
fn crawl_then_track_coverage_online() {
    let cfg = StudyConfig::quick().with_scale(0.03);
    let study = DomainStudy::generate(Domain::Restaurants, &cfg);
    let lists = study.occurrence_lists(Attribute::Phone, &cfg);
    let n = study.catalog.len();
    let index = SearchIndex::build(n, &lists, None);

    // Crawl with the size-greedy policy, replaying fetches into the
    // streaming coverage accumulator.
    let result = crawl(&index, &lists, LargestFirst::default(), &[EntityId::new(0)], 500);
    assert!(result.entities_found > 0);

    // Re-run the fetch order through streaming coverage: the crawler's
    // trace and the accumulator must agree at the end.
    let mut sc = StreamingCoverage::new(n, 3);
    // (The crawler does not expose its fetch order directly; emulate by
    // ingesting the k-coverage ordering for the same number of fetches —
    // LargestFirst fetches by size, which is exactly that ordering when
    // the whole frontier is known. We assert the weaker, order-free
    // property: streaming over *all* sites reaches the batch totals.)
    for l in &lists {
        sc.add_site(l);
    }
    let batch = webstruct::coverage::k_coverage(n, &lists, 3).unwrap();
    for k in 1..=3 {
        let expected = *batch.curves[k - 1].last().unwrap();
        assert!((sc.coverage(k) - expected).abs() < 1e-12);
    }
    // Crawler recall at a 500-fetch budget is substantial in a connected
    // world.
    let present = lists.iter().flatten().collect::<std::collections::HashSet<_>>();
    assert!(
        result.entities_found as f64 >= 0.8 * present.len() as f64,
        "found {} of {}",
        result.entities_found,
        present.len()
    );
}

#[test]
fn discover_extract_fuse_dedup_pipeline() {
    let cfg = StudyConfig::quick().with_scale(0.03);
    let study = DomainStudy::generate(Domain::Banks, &cfg);

    // 1. Fuse noisy claims into a database.
    let claims = ClaimSet::generate(
        &study.catalog,
        &study.web,
        &ErrorModel::default(),
        0.2,
        Seed(5),
    );
    let fused = evaluate(&MajorityVote, &claims, 10);
    assert!(fused.accuracy > 0.95, "fusion accuracy {}", fused.accuracy);

    // 2. Deduplicate listing records for the same catalog.
    let records = generate_records(&study.catalog, 3, &VariantModel::default(), Seed(6));
    let dedup = dedup_and_evaluate(&records, Blocking::PhoneOrName, &MatchConfig::default());
    assert!(dedup.f1() > 0.85, "dedup F1 {}", dedup.f1());

    // 3. The two stages are consistent: both operate on the same entity
    //    universe.
    assert_eq!(claims.n_entities, study.catalog.len());
    assert_eq!(records.len(), study.catalog.len() * 3);
}
