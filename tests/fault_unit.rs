//! Direct unit-level tests of the fault layer's building blocks, driven
//! through the public facade: the breaker state machine's full
//! closed → open → half-open cycle, retry backoff/jitter bounds, the
//! simulated clock's monotonicity, and the fetch engine's
//! attempt-accounting invariant.

use webstruct::crawl::fetch::FetchSim;
use webstruct::util::fault::{
    BreakerConfig, BreakerState, CircuitBreaker, FaultConfig, FaultPlan, RetryPolicy, SimClock,
};
use webstruct::util::rng::Seed;

#[test]
fn breaker_half_open_probe_success_closes_it() {
    let mut b = CircuitBreaker::new(BreakerConfig {
        failure_threshold: 3,
        cooldown_ticks: 50,
    });
    assert_eq!(b.state(), BreakerState::Closed);
    for tick in 0..2 {
        assert!(!b.record_failure(tick), "below threshold");
        assert_eq!(b.state(), BreakerState::Closed);
    }
    assert!(b.record_failure(2), "third consecutive failure trips it");
    assert_eq!(b.state(), BreakerState::Open);
    assert_eq!(b.opens, 1);
    assert!(!b.allow(10), "open rejects before cooldown");
    assert!(b.allow(52), "cooldown elapsed: probe admitted");
    assert_eq!(b.state(), BreakerState::HalfOpen);
    b.record_success();
    assert_eq!(b.state(), BreakerState::Closed);
    // Fully reset: the next failure starts counting from zero again.
    assert!(!b.record_failure(60));
    assert!(!b.record_failure(61));
    assert_eq!(b.state(), BreakerState::Closed);
}

#[test]
fn breaker_half_open_probe_failure_reopens_immediately() {
    let mut b = CircuitBreaker::new(BreakerConfig {
        failure_threshold: 1,
        cooldown_ticks: 100,
    });
    assert!(b.record_failure(0), "threshold 1: first failure trips");
    assert!(b.allow(100), "boundary tick admits the probe");
    assert_eq!(b.state(), BreakerState::HalfOpen);
    // One failed probe re-opens without needing `failure_threshold`
    // consecutive failures again.
    assert!(b.record_failure(101));
    assert_eq!(b.state(), BreakerState::Open);
    assert_eq!(b.opens, 2);
    // The new cooldown is measured from the re-open, not the first trip.
    assert!(!b.allow(150));
    assert!(b.allow(201));
    assert_eq!(b.state(), BreakerState::HalfOpen);
}

#[test]
fn breaker_failures_while_open_do_not_extend_or_recount() {
    let mut b = CircuitBreaker::new(BreakerConfig {
        failure_threshold: 1,
        cooldown_ticks: 30,
    });
    assert!(b.record_failure(0));
    // In-flight failures reported while open are absorbed.
    assert!(!b.record_failure(5));
    assert!(!b.record_failure(10));
    assert_eq!(b.opens, 1);
    assert!(b.allow(30), "cooldown unchanged by absorbed failures");
}

#[test]
fn retry_backoff_is_within_jitter_bounds_for_every_retry_and_salt() {
    let policy = RetryPolicy {
        max_retries: 6,
        base_backoff_ticks: 8,
        max_backoff_ticks: 128,
        jitter: 0.5,
    };
    for retry in 0..12u32 {
        let exp = policy
            .base_backoff_ticks
            .saturating_mul(1u64 << retry.min(32))
            .min(policy.max_backoff_ticks);
        for salt in 0..64u64 {
            let ticks = policy.backoff_ticks(retry, salt);
            assert!(
                ticks >= exp,
                "jitter must only add: retry {retry} salt {salt} gave {ticks} < {exp}"
            );
            let ceiling = exp + (exp as f64 * policy.jitter) as u64;
            assert!(
                ticks <= ceiling,
                "jitter above amplitude: retry {retry} salt {salt} gave {ticks} > {ceiling}"
            );
            assert_eq!(
                ticks,
                policy.backoff_ticks(retry, salt),
                "backoff must be deterministic"
            );
        }
    }
    // Zero jitter collapses to the pure exponential.
    let flat = RetryPolicy {
        jitter: 0.0,
        ..policy
    };
    assert_eq!(flat.backoff_ticks(0, 7), 8);
    assert_eq!(flat.backoff_ticks(1, 7), 16);
    assert_eq!(flat.backoff_ticks(10, 7), 128, "capped at max");
}

#[test]
fn retry_jitter_decorrelates_across_salts_but_not_across_calls() {
    // A wide backoff so the integer jitter window (exp .. exp*(1+jitter))
    // has room to show the spread: 160..200 ticks at retry 3.
    let policy = RetryPolicy {
        max_retries: 5,
        base_backoff_ticks: 20,
        max_backoff_ticks: 640,
        jitter: 0.25,
    };
    let across_salts: std::collections::HashSet<u64> = (0..100u64)
        .map(|salt| policy.backoff_ticks(3, salt))
        .collect();
    assert!(
        across_salts.len() > 10,
        "salts should spread the jitter: got {} distinct values",
        across_salts.len()
    );
    for salt in [0u64, 1, 99, u64::MAX] {
        let first = policy.backoff_ticks(2, salt);
        for _ in 0..5 {
            assert_eq!(policy.backoff_ticks(2, salt), first);
        }
    }
}

#[test]
fn sim_clock_is_monotonic_under_any_advance_sequence() {
    let mut clock = SimClock::new();
    assert_eq!(clock.now(), 0);
    let mut last = 0u64;
    for step in [0u64, 1, 3, 0, 250, 1, 0, u64::MAX / 2] {
        clock.advance(step);
        assert!(
            clock.now() >= last,
            "clock went backwards: {} after {last}",
            clock.now()
        );
        assert_eq!(clock.now(), last.saturating_add(step));
        last = clock.now();
    }
    // Saturates instead of wrapping — a wrap would un-order every
    // breaker cooldown derived from it.
    clock.advance(u64::MAX);
    assert_eq!(clock.now(), u64::MAX);
    clock.advance(1);
    assert_eq!(clock.now(), u64::MAX);
}

#[test]
fn fetch_stats_invariant_holds_throughout_a_flaky_crawl() {
    let plan = FaultPlan::new(FaultConfig::flaky(0.4), Seed(99));
    let n_sites = 24;
    let mut sim = FetchSim::new(&plan, RetryPolicy::default(), BreakerConfig::default(), n_sites);
    let mut budget = 600usize;
    for round in 0..40 {
        let site = round % n_sites;
        if !sim.allow(site) {
            continue;
        }
        let (_, spent) = sim.fetch_round(site, budget);
        budget = budget.saturating_sub(spent);
        // The invariant is not just a final-state property: every
        // intermediate snapshot must satisfy it too.
        let mid = sim.stats();
        assert!(mid.is_consistent(), "mid-crawl snapshot violated: {mid:?}");
        if budget == 0 {
            break;
        }
    }
    let stats = sim.into_stats();
    assert!(stats.is_consistent(), "final snapshot violated: {stats:?}");
    assert!(stats.attempts > 0, "the crawl should have issued attempts");
    assert_eq!(
        stats.attempts,
        stats.ok + stats.timeouts + stats.transients + stats.rate_limited + stats.dead_attempts
    );
}

#[test]
fn fetch_stats_consistency_check_rejects_miscounted_stats() {
    let plan = FaultPlan::none();
    let sim = FetchSim::new(&plan, RetryPolicy::no_retries(), BreakerConfig::default(), 1);
    let mut stats = sim.into_stats();
    assert!(stats.is_consistent(), "fresh stats are trivially consistent");
    stats.attempts += 1;
    assert!(!stats.is_consistent(), "orphan attempt must be flagged");
    stats.ok += 1;
    assert!(stats.is_consistent(), "classified attempt balances again");
}
