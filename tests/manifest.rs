//! Golden artifact manifests: SHA-256 hashes locking down every
//! `fig*.csv` / `table*.csv` the reproduction produces.
//!
//! Two manifests, two failure modes:
//!
//! * `tests/MANIFEST.sha256` — hashes of the **full-scale** artifacts in
//!   `artifacts/` (a local build product). Catches artifacts being
//!   edited or silently regenerated with different bytes.
//! * `tests/MANIFEST_quick.sha256` — hashes of CSVs **regenerated
//!   in-process** at `StudyConfig::quick()`. Catches code drift: any
//!   change to the corpus model, extraction pipeline or experiment
//!   logic that moves a single byte of output fails here, in seconds,
//!   without a full-scale run.
//!
//! Intentional output changes are re-blessed with `scripts/bless.sh`
//! (which runs this test with `WEBSTRUCT_BLESS=1` to rewrite both
//! manifests).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use webstruct::core::runner::run_all;
use webstruct::core::study::StudyConfig;
use webstruct::util::csv::{figure_to_csv, table_to_csv};
use webstruct::util::sha::sha256_hex;

const BLESS_ENV: &str = "WEBSTRUCT_BLESS";

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn blessing() -> bool {
    std::env::var(BLESS_ENV).map_or(false, |v| v == "1")
}

/// Parse a `sha256sum`-style manifest: `<hex>  <name>` per line.
fn parse_manifest(path: &Path) -> BTreeMap<String, String> {
    let text = fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}; run scripts/bless.sh", path.display()));
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (hash, name) = line
            .split_once("  ")
            .unwrap_or_else(|| panic!("malformed manifest line: {line:?}"));
        out.insert(name.to_string(), hash.to_string());
    }
    out
}

fn write_manifest(path: &Path, entries: &BTreeMap<String, String>, header: &str) {
    let mut text = String::from(header);
    for (name, hash) in entries {
        text.push_str(&format!("{hash}  {name}\n"));
    }
    fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// Compare `actual` against the manifest at `path`, or rewrite it when
/// blessing. Reports every drifted/missing/extra entry, not just the
/// first.
fn check_or_bless(path: &Path, actual: &BTreeMap<String, String>, header: &str) {
    if blessing() {
        write_manifest(path, actual, header);
        eprintln!("blessed {} ({} entries)", path.display(), actual.len());
        return;
    }
    let expected = parse_manifest(path);
    let mut drift = Vec::new();
    for (name, hash) in &expected {
        match actual.get(name) {
            None => drift.push(format!("missing artifact: {name}")),
            Some(h) if h != hash => {
                drift.push(format!("hash drift: {name}\n  manifest {hash}\n  actual   {h}"));
            }
            Some(_) => {}
        }
    }
    for name in actual.keys() {
        if !expected.contains_key(name) {
            drift.push(format!("artifact not in manifest: {name}"));
        }
    }
    assert!(
        drift.is_empty(),
        "{} drifted from {}:\n{}\n\nIf the change is intentional, re-bless with scripts/bless.sh",
        drift.len(),
        path.display(),
        drift.join("\n")
    );
}

#[test]
fn full_scale_artifacts_match_manifest() {
    // `artifacts/` is a local build product (gitignored), so this check
    // only bites where a full-scale run exists — fresh clones and CI
    // rely on the quick-scale manifest below instead.
    let root = repo_root();
    let dir = root.join("artifacts");
    let Ok(entries) = fs::read_dir(&dir) else {
        eprintln!("skipping: no artifacts/ (run `webstruct reproduce` to enable this check)");
        return;
    };
    let mut actual = BTreeMap::new();
    for entry in entries {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_golden = (name.starts_with("fig") || name.starts_with("table"))
            && name.ends_with(".csv");
        if !is_golden {
            continue;
        }
        let bytes = fs::read(entry.path()).unwrap();
        actual.insert(name, sha256_hex(&bytes));
    }
    if actual.is_empty() {
        eprintln!("skipping: artifacts/ holds no fig*/table* CSVs");
        return;
    }
    assert!(
        actual.len() >= 35,
        "expected the full figure/table set, found {}",
        actual.len()
    );
    check_or_bless(
        &root.join("tests/MANIFEST.sha256"),
        &actual,
        "# SHA-256 of artifacts/fig*.csv and table*.csv (full scale, default seed).\n\
         # Regenerate with scripts/bless.sh after an intentional output change.\n",
    );
}

#[test]
fn quick_scale_regeneration_matches_manifest() {
    // Regenerate the whole figure/table set in-process at quick scale
    // and hash the CSV renderings — the same bytes `write_outputs`
    // would put on disk for this configuration.
    let out = run_all(&StudyConfig::quick());
    assert!(
        out.failures.is_empty(),
        "quick run degraded: {:?}",
        out.failures
    );
    let mut actual = BTreeMap::new();
    for fig in &out.figures {
        actual.insert(format!("{}.csv", fig.id), sha256_hex(figure_to_csv(fig).as_bytes()));
    }
    for (i, table) in out.tables.iter().enumerate() {
        // Same positional naming as `write_outputs`.
        actual.insert(
            format!("table{}.csv", i + 1),
            sha256_hex(table_to_csv(table).as_bytes()),
        );
    }
    assert_eq!(actual.len(), 35, "33 figures + 2 tables");
    check_or_bless(
        &repo_root().join("tests/MANIFEST_quick.sha256"),
        &actual,
        "# SHA-256 of fig*/table* CSVs regenerated in-process at StudyConfig::quick().\n\
         # Catches code-level output drift fast. Re-bless with scripts/bless.sh.\n",
    );
}
