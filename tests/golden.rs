//! Golden equivalence for the zero-allocation hot path: the fused
//! scratch-buffer pipeline ([`Extractor::extract_web`], which renders
//! into a reused [`ExtractScratch`]) must produce byte-identical results
//! to the owned-`Page` path (`PageStream` iterator + `extract_all`)
//! across every domain and thread count, and the scratch truncation path
//! must match the owned one on multibyte boundaries.

use std::sync::{Mutex, MutexGuard, OnceLock};
use webstruct::corpus::domain::Domain;
use webstruct::corpus::entity::{CatalogConfig, EntityCatalog};
use webstruct::corpus::page::{Page, PageConfig, PageKind, PageStream};
use webstruct::corpus::web::{Web, WebConfig};
use webstruct::extract::pipeline::ExtractScratch;
use webstruct::extract::{train_review_classifier, ExtractedWeb, Extractor};
use webstruct::util::ids::{PageId, SiteId};
use webstruct::util::par;
use webstruct::util::rng::Seed;

fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("env lock poisoned")
}

/// Run `f` with `WEBSTRUCT_THREADS` pinned to `threads` — the operator
/// knob, so the test drives the same path a deployment would.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = env_lock();
    std::env::set_var(par::THREADS_ENV, threads.to_string());
    let out = f();
    std::env::remove_var(par::THREADS_ENV);
    out
}

fn fixture(domain: Domain, entities: usize, scale: f64) -> (EntityCatalog, Web) {
    let catalog = EntityCatalog::generate(&CatalogConfig::new(domain, entities), Seed(91));
    let web = Web::generate(&catalog, &WebConfig::preset(domain).scaled(scale), Seed(91));
    (catalog, web)
}

fn assert_same(scratch_path: &ExtractedWeb, owned_path: &ExtractedWeb, label: &str) {
    for attr in [
        webstruct::corpus::domain::Attribute::Phone,
        webstruct::corpus::domain::Attribute::Isbn,
        webstruct::corpus::domain::Attribute::Homepage,
        webstruct::corpus::domain::Attribute::Review,
    ] {
        assert_eq!(
            scratch_path.occurrence_lists(attr),
            owned_path.occurrence_lists(attr),
            "{label}: {attr:?} occurrence lists diverged"
        );
    }
    assert_eq!(
        scratch_path.review_page_lists(),
        owned_path.review_page_lists(),
        "{label}: review page lists diverged"
    );
    assert_eq!(scratch_path.pages_processed, owned_path.pages_processed, "{label}");
    assert_eq!(scratch_path.bytes_rendered, owned_path.bytes_rendered, "{label}");
    assert_eq!(scratch_path.unmatched_phones, owned_path.unmatched_phones, "{label}");
    assert_eq!(scratch_path.unmatched_isbns, owned_path.unmatched_isbns, "{label}");
    assert_eq!(scratch_path.unmatched_hrefs, owned_path.unmatched_hrefs, "{label}");
}

#[test]
fn scratch_path_matches_owned_path_across_domains_and_threads() {
    for (domain, entities, scale) in [
        (Domain::Restaurants, 300, 0.01),
        (Domain::Books, 300, 0.01),
        (Domain::Banks, 300, 0.01),
    ] {
        let (catalog, web) = fixture(domain, entities, scale);
        let mut extractor = Extractor::new(&catalog);
        if domain == Domain::Restaurants {
            let clf = train_review_classifier(Seed(92), 150).expect("balanced training set");
            extractor = extractor.with_review_classifier(clf);
        }
        let seed = Seed(93);
        let config = PageConfig::default();
        // Owned path: materialised pages through the compatibility API.
        let pages: Vec<Page> = PageStream::new(&web, &catalog, config.clone(), seed).collect();
        let owned = extractor.extract_all(web.n_sites(), pages);
        for threads in [1usize, 2, 8] {
            let scratch = with_threads(threads, || {
                extractor.extract_web(&web, &config, seed, par::num_threads())
            });
            assert_same(&scratch, &owned, &format!("{domain:?} at {threads} threads"));
        }
    }
}

#[test]
fn pooled_path_matches_unpooled_path_across_domains_and_threads() {
    use webstruct::extract::ExtractPool;
    for (domain, entities, scale) in [
        (Domain::Restaurants, 300, 0.01),
        (Domain::Books, 300, 0.01),
        (Domain::Banks, 300, 0.01),
    ] {
        let (catalog, web) = fixture(domain, entities, scale);
        let mut extractor = Extractor::new(&catalog);
        if domain == Domain::Restaurants {
            let clf = train_review_classifier(Seed(92), 150).expect("balanced training set");
            extractor = extractor.with_review_classifier(clf);
        }
        let seed = Seed(93);
        let config = PageConfig::default();
        let reference = extractor.extract_web(&web, &config, seed, 1);
        // One pool carried across every thread count AND reused for a
        // second run at each count: stale accumulator state from a prior
        // run (or a different sharding) must never leak into the next.
        let mut pool = ExtractPool::new();
        for threads in [1usize, 2, 8] {
            for run in 0..2 {
                let pooled = extractor.extract_web_pooled(&web, &config, seed, threads, &mut pool);
                assert_same(
                    pooled,
                    &reference,
                    &format!("{domain:?} pooled at {threads} threads, run {run}"),
                );
            }
        }
    }
}

#[test]
fn scratch_truncation_matches_owned_truncation_on_multibyte_text() {
    let (catalog, _web) = fixture(Domain::Restaurants, 100, 0.01);
    let clf = train_review_classifier(Seed(92), 150).expect("balanced training set");
    let extractor = Extractor::new(&catalog).with_review_classifier(clf);
    let page = Page {
        id: PageId::new(0),
        site: SiteId::new(0),
        url: "http://x.example.com/".into(),
        kind: PageKind::Listing,
        text: "caf\u{e9} \u{2603} 206-555-0100 \u{1F600} ISBN 978-0-306-40615-7 caf\u{e9}"
            .repeat(5),
    };
    // One scratch reused across every fraction: stale buffer contents
    // from a longer prefix must never leak into a shorter one.
    let mut scratch = ExtractScratch::new();
    for i in 0..=40 {
        let frac = f64::from(i) / 40.0;
        let owned = extractor.extract_page_prefix(&page, frac);
        let via_scratch = extractor.extract_prefix_into(&page, frac, &mut scratch);
        assert_eq!(*via_scratch, owned, "frac {frac} diverged");
        assert!(via_scratch.truncated);
    }
    // Clamping behaviour is preserved too.
    for frac in [-1.0, 2.0] {
        let owned = extractor.extract_page_prefix(&page, frac);
        let via_scratch = extractor.extract_prefix_into(&page, frac, &mut scratch);
        assert_eq!(*via_scratch, owned, "frac {frac} diverged");
    }
}

#[test]
fn per_page_scratch_reuse_matches_fresh_extraction() {
    let (catalog, web) = fixture(Domain::Restaurants, 300, 0.01);
    let clf = train_review_classifier(Seed(92), 150).expect("balanced training set");
    let extractor = Extractor::new(&catalog).with_review_classifier(clf);
    let pages: Vec<Page> =
        PageStream::new(&web, &catalog, PageConfig::default(), Seed(93)).collect();
    let mut scratch = ExtractScratch::new();
    for page in &pages {
        let fresh = extractor.extract_page(page);
        let reused = extractor.extract_page_into(page, &mut scratch);
        assert_eq!(*reused, fresh, "page {:?} diverged under buffer reuse", page.id);
    }
}
