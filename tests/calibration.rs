//! Calibration integration tests: the reproduced figures must match the
//! *shape* of the paper's results — who wins, by roughly what factor,
//! where crossovers fall. These run at a moderate scale (0.3) for
//! fidelity; EXPERIMENTS.md records the full-scale (1.0) numbers.

use webstruct::core::cache::Study;
use webstruct::core::experiments::{connectivity, spread, tail_value};
use webstruct::core::study::StudyConfig;
use webstruct::corpus::domain::{Attribute, Domain};

fn study() -> Study {
    Study::new(StudyConfig::default().with_scale(0.3))
}

#[test]
fn fig1_phone_head_sites_cover_most_but_corroboration_needs_thousands() {
    let study = study();
    let figs = spread::fig1(&study);
    let restaurants = &figs[0];
    // Paper: "the top-10 sites cover around 93% of all the entities" and
    // "top-100 sites [give] close to 100%".
    let k1 = restaurants.series_named("k=1").unwrap();
    let top10 = k1.interpolate(10.0).unwrap();
    assert!(
        (0.85..=0.99).contains(&top10),
        "restaurant phones: top-10 k=1 coverage {top10} (paper ~0.93)"
    );
    let top100 = k1.interpolate(100.0).unwrap();
    assert!(top100 > 0.97, "top-100 k=1 coverage {top100} (paper ~1.0)");
    // Paper: "if we want at least k = 5 pages ... we need to go to
    // top-5000 sites to cover even 90%".
    let k5 = restaurants.series_named("k=5").unwrap();
    let k5_at_100 = k5.interpolate(100.0).unwrap();
    assert!(
        k5_at_100 < 0.75,
        "k=5 coverage at top-100 must still be far from done: {k5_at_100}"
    );
    let needed = k5.first_x_reaching(0.9).expect("k=5 reaches 90% eventually");
    assert!(
        needed > 500.0,
        "k=5 needs thousands of sites for 90% (got {needed})"
    );
}

#[test]
fn fig2_homepages_spread_wider_than_phones_in_every_domain() {
    let study = study();
    let phones = spread::fig1(&study);
    let homepages = spread::fig2(&study);
    for (p, h) in phones.iter().zip(&homepages) {
        let pk1 = p.series_named("k=1").unwrap();
        let hk1 = h.series_named("k=1").unwrap();
        let p10 = pk1.interpolate(10.0).unwrap();
        let h10 = hk1.interpolate(10.0).unwrap();
        assert!(
            h10 < p10,
            "{}: homepage top-10 coverage {h10} should trail phone {p10}",
            h.title
        );
    }
    // Paper: "We need at least 10,000 sites to cover 95% of unique
    // restaurants (even with k = 1)" — i.e. a large fraction of the tail.
    let rest = &homepages[0];
    let k1 = rest.series_named("k=1").unwrap();
    let needed = k1.first_x_reaching(0.95).expect("95% reachable");
    let n_sites = k1.points.last().unwrap().0;
    assert!(
        needed > 0.05 * n_sites,
        "95% homepage coverage needs a deep prefix: {needed} of {n_sites}"
    );
}

#[test]
fn fig3_books_match_paper_shape() {
    let study = study();
    let fig = spread::fig3(&study);
    let k1 = fig.series_named("k=1").unwrap();
    assert!(k1.interpolate(10.0).unwrap() > 0.6, "head book sites cover most ISBNs");
    assert!(k1.final_y().unwrap() > 0.95);
    // Corroboration gap: k=10 trails k=1 substantially at top-100.
    let k10 = fig.series_named("k=10").unwrap();
    assert!(k10.interpolate(100.0).unwrap() < k1.interpolate(100.0).unwrap() - 0.3);
}

#[test]
fn fig4_reviews_match_paper_shape() {
    let study = study();
    let (fig4a, fig4b) = spread::fig4(&study);
    let k1 = fig4a.series_named("k=1").unwrap();
    // Paper: ">1000 sites to get 90% coverage" of restaurants with a
    // review; at our 0.3 scale the site population is ~12k vs their ~1e5,
    // so the milestone shifts proportionally (hundreds, not tens).
    let needed = k1.first_x_reaching(0.9).expect("90% reachable");
    let n_sites = k1.points.last().unwrap().0;
    assert!(
        needed > 50.0 && needed / n_sites > 0.003,
        "review 1-coverage at 90% needs a deep prefix (got {needed} of {n_sites}; paper: ~1000 of ~1e5)"
    );
    // Aggregate page coverage trails entity coverage at the same prefix
    // (paper: 95% of entities vs 80% of reviews at top-1000).
    let agg = &fig4b.series[0];
    for t in [100.0, 300.0, 1000.0] {
        let entity = k1.interpolate(t).unwrap();
        let pages = agg.interpolate(t).unwrap();
        assert!(
            pages < entity,
            "at top-{t}: aggregate review pages {pages} must trail entity coverage {entity}"
        );
    }
}

#[test]
fn fig5_greedy_improvement_is_insignificant() {
    let study = study();
    let fig = spread::fig5(&study);
    let by_size = fig.series_named("Order by Size").unwrap();
    let greedy = fig.series_named("Greedy Set Cover").unwrap();
    // Paper: "While the coverage slightly improves with the greedy set
    // cover, the improvement is insignificant."
    let mut max_gain: f64 = 0.0;
    for &(t, g) in &greedy.points {
        let s = by_size.interpolate(t).unwrap();
        max_gain = max_gain.max(g - s);
    }
    assert!(
        max_gain < 0.15,
        "greedy's max improvement {max_gain} should be modest"
    );
    assert!(max_gain > -0.05, "greedy should not lose either");
}

#[test]
fn fig6_demand_concentration_ordering() {
    let study = study();
    let figs = tail_value::fig6(&study);
    for panel in [&figs[0], &figs[2]] {
        // CDF panels: imdb above amazon above yelp at 20% inventory.
        let at = |name: &str| panel.series_named(name).unwrap().interpolate(0.2).unwrap();
        let (i, a, y) = (at("imdb"), at("amazon"), at("yelp"));
        assert!(i > a && a > y, "{}: imdb {i} amazon {a} yelp {y}", panel.id);
        // Paper: imdb top-20% > 90%, yelp ~60%.
        assert!(i > 0.85, "{}: imdb share {i}", panel.id);
        assert!((0.3..0.8).contains(&y), "{}: yelp share {y}", panel.id);
    }
}

#[test]
fn fig8_value_add_shapes() {
    let study = study();
    let figs = tail_value::fig8(&study);
    // figs order: yelp, amazon, imdb.
    for fig in &figs[..2] {
        for s in &fig.series {
            let last = s.points.last().unwrap().1;
            assert!(
                last < 0.3,
                "{} {}: head VA ratio {last} (paper: well below 1)",
                fig.id,
                s.name
            );
        }
    }
    let imdb = &figs[2];
    for s in &imdb.series {
        let max = s.points.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max);
        let last = s.points.last().unwrap().1;
        assert!(max > 1.2, "imdb {}: interior bump {max}", s.name);
        assert!(last < max, "imdb {}: head falls from bump", s.name);
    }
}

#[test]
fn table2_matches_paper_magnitudes() {
    let study = study();
    let rows = connectivity::table2_rows(&study);
    assert_eq!(rows.len(), 17);
    for row in &rows {
        assert!(row.diameter_exact, "{} {}: iFUB must converge", row.domain, row.attr);
        // Paper diameters are 6-8 on graphs with avg degree up to 251; at
        // reproduction scale the sparser homepage graphs grow longer
        // peripheral chains (see EXPERIMENTS.md), so their bound is wider.
        let diam_max = if row.attr == Attribute::Homepage { 26 } else { 14 };
        assert!(
            (4..=diam_max).contains(&row.diameter),
            "{} {}: diameter {} (paper range 6-8, allowed <= {diam_max})",
            row.domain,
            row.attr,
            row.diameter
        );
        let largest_floor = if row.attr == Attribute::Homepage { 93.0 } else { 98.5 };
        assert!(
            row.pct_in_largest > largest_floor,
            "{} {}: largest component {}% (paper >= {largest_floor}%)",
            row.domain,
            row.attr,
            row.pct_in_largest
        );
        assert!(
            row.avg_sites_per_entity > 2.0 && row.avg_sites_per_entity < 500.0,
            "{} {}: avg sites/entity {}",
            row.domain,
            row.attr,
            row.avg_sites_per_entity
        );
    }
    // Relative ordering from Table 2: hotels are mentioned on more sites
    // than automotive businesses (56 vs 13); books are the sparsest graph.
    let find = |d: Domain, a: Attribute| {
        rows.iter()
            .find(|r| r.domain == d && r.attr == a)
            .unwrap()
            .avg_sites_per_entity
    };
    assert!(
        find(Domain::HotelsLodging, Attribute::Phone) > find(Domain::Automotive, Attribute::Phone)
    );
    assert!(find(Domain::Books, Attribute::Isbn) < find(Domain::Restaurants, Attribute::Phone));
    // HomeGarden is the most fragmented phone graph (paper: 4507 comps).
    let hg = rows
        .iter()
        .find(|r| r.domain == Domain::HomeGarden && r.attr == Attribute::Phone)
        .unwrap();
    let banks = rows
        .iter()
        .find(|r| r.domain == Domain::Banks && r.attr == Attribute::Phone)
        .unwrap();
    assert!(
        hg.n_components > banks.n_components,
        "HomeGarden ({}) should fragment more than Banks ({})",
        hg.n_components,
        banks.n_components
    );
}

#[test]
fn fig9_robustness_matches_paper() {
    let study = study();
    let panels = connectivity::fig9(&study);
    // Paper: after removing the top 10 sites, > 99% of entities remain in
    // the largest component for ISBN and phones, > 90% for homepages.
    for s in &panels[0].series {
        assert!(
            s.points[10].1 > 0.95,
            "phones {}: k=10 fraction {}",
            s.name,
            s.points[10].1
        );
    }
    for s in &panels[1].series {
        assert!(
            s.points[10].1 > 0.75,
            "homepages {}: k=10 fraction {}",
            s.name,
            s.points[10].1
        );
    }
    assert!(
        panels[2].series[0].points[10].1 > 0.93,
        "books: k=10 fraction {}",
        panels[2].series[0].points[10].1
    );
}
