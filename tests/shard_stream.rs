//! The out-of-core contract, end to end at the workspace level: a corpus
//! rendered into page shards on disk and extracted shard-by-shard must
//! produce byte-identical results to the all-in-memory path, at every
//! thread count, and the shard files themselves must be byte-stable
//! across writes (the format has no timestamps or other nondeterminism).

use std::path::PathBuf;
use webstruct::core::study::{DomainStudy, StudyConfig};
use webstruct::corpus::domain::{Attribute, Domain};
use webstruct::corpus::page::PageConfig;
use webstruct::corpus::ShardStore;
use webstruct::extract::Extractor;
use webstruct::util::rng::Seed;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("webstruct-stream-test-{}-{tag}", std::process::id()))
}

#[test]
fn streamed_extraction_matches_in_memory_at_every_thread_count() {
    let cfg = StudyConfig::quick().with_scale(0.02);
    let study = DomainStudy::generate(Domain::Restaurants, &cfg);
    let extractor = Extractor::new(&study.catalog);
    let page_config = PageConfig::default();
    let seed = Seed(77);

    let baseline = extractor.extract_web(&study.web, &page_config, seed, 1);

    // Small shard target so the streamed path crosses many shard
    // boundaries even at this scale.
    let dir = temp_dir("roundtrip");
    let store = ShardStore::write(&dir, &study.web, &study.catalog, &page_config, seed, 512 * 1024)
        .expect("write shards");
    assert!(store.len() > 2, "want several shards, got {}", store.len());

    for threads in [1usize, 2, 8] {
        let streamed = extractor
            .extract_store(&store, study.web.n_sites(), threads)
            .expect("stream shards");
        for attr in [Attribute::Phone, Attribute::Homepage, Attribute::Review] {
            assert_eq!(
                streamed.occurrence_lists(attr),
                baseline.occurrence_lists(attr),
                "{attr:?} diverged at {threads} threads"
            );
        }
        assert_eq!(streamed.pages_processed, baseline.pages_processed);
        assert_eq!(streamed.bytes_rendered, baseline.bytes_rendered);
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn shard_files_are_byte_stable_across_writes() {
    let cfg = StudyConfig::quick().with_scale(0.01);
    let study = DomainStudy::generate(Domain::Restaurants, &cfg);
    let page_config = PageConfig::default();
    let seed = Seed(9);
    let (a, b) = (temp_dir("stable-a"), temp_dir("stable-b"));
    let store_a = ShardStore::write(&a, &study.web, &study.catalog, &page_config, seed, 512 * 1024)
        .expect("write shards (a)");
    let store_b = ShardStore::write(&b, &study.web, &study.catalog, &page_config, seed, 512 * 1024)
        .expect("write shards (b)");
    assert_eq!(store_a.len(), store_b.len());
    for (pa, pb) in store_a.paths().iter().zip(store_b.paths()) {
        let (bytes_a, bytes_b) = (
            std::fs::read(pa).expect("read shard (a)"),
            std::fs::read(pb).expect("read shard (b)"),
        );
        assert_eq!(bytes_a, bytes_b, "{} differs from {}", pa.display(), pb.display());
    }
    std::fs::remove_dir_all(&a).expect("cleanup a");
    std::fs::remove_dir_all(&b).expect("cleanup b");
}

#[test]
fn reopened_store_reads_what_was_written() {
    let cfg = StudyConfig::quick().with_scale(0.01);
    let study = DomainStudy::generate(Domain::Restaurants, &cfg);
    let page_config = PageConfig::default();
    let seed = Seed(9);
    let dir = temp_dir("reopen");
    let written =
        ShardStore::write(&dir, &study.web, &study.catalog, &page_config, seed, 512 * 1024)
            .expect("write shards");
    let reopened = ShardStore::open(&dir).expect("open store");
    assert_eq!(reopened.len(), written.len());
    assert_eq!(reopened.paths(), written.paths());
    let extractor = Extractor::new(&study.catalog);
    let from_written = extractor
        .extract_store(&written, study.web.n_sites(), 2)
        .expect("extract written");
    let from_reopened = extractor
        .extract_store(&reopened, study.web.n_sites(), 2)
        .expect("extract reopened");
    assert_eq!(
        from_written.occurrence_lists(Attribute::Phone),
        from_reopened.occurrence_lists(Attribute::Phone)
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
