//! Incremental-recomputation properties: for any mutation fraction and
//! any worker-thread count, `incremental(mutate(E))` must be
//! byte-identical to `cold(mutate(E))` — same output digest, same
//! committed manifest — and a poisoned cache entry must be detected by
//! its digest and recomputed, never trusted.
//!
//! Also pins the epoch output digest of a fixed scenario in
//! `tests/EPOCH.sha256` (re-bless with `scripts/bless.sh` after an
//! intentional output change).

use std::path::{Path, PathBuf};
use webstruct::core::epoch::Epoch;
use webstruct::core::study::StudyConfig;
use webstruct::corpus::domain::Domain;
use webstruct::util::rng::Seed;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "webstruct-epoch-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The fixture every test runs: small corpus, small shards, so a
/// fractional mutation leaves most shards clean.
fn fixture() -> Epoch {
    Epoch::new(Domain::Banks, StudyConfig::quick().with_scale(0.02)).with_shard_bytes(16 << 10)
}

#[test]
fn incremental_equals_cold_across_fractions_and_threads() {
    let warm_dir = tmpdir("fractions-warm");
    let cold_dir = tmpdir("fractions-cold");
    for fraction in [0.0, 0.01, 0.1, 1.0] {
        // The cold oracle at the mutated state, computed once per
        // fraction; the seed-pure mutation lets every thread count
        // reconstruct the identical state from scratch.
        let mut oracle = fixture();
        oracle.mutate(fraction, Seed(17));
        let cold = oracle
            .run_cold(&cold_dir, 2)
            .expect("cold oracle run");

        for threads in [1usize, 2, 8] {
            let mut epoch = fixture();
            let _ = std::fs::remove_dir_all(&warm_dir);
            let base = epoch.run(&warm_dir, threads).expect("populate run");
            assert_eq!(base.cache_hits, 0, "fresh store cannot hit");
            epoch.mutate(fraction, Seed(17));
            let warm = epoch.run(&warm_dir, threads).expect("warm run");
            assert_eq!(
                warm.output_digest, cold.output_digest,
                "incremental(mutate(E)) != cold(mutate(E)) at \
                 fraction {fraction}, threads {threads}"
            );
            if fraction == 0.0 {
                assert_eq!(warm.cache_misses, 0, "nothing mutated, nothing recomputes");
                assert_eq!(warm.recovery.shards_stale, 0);
            } else if fraction == 1.0 {
                assert_eq!(warm.cache_hits, 0, "everything mutated, nothing replays");
            } else {
                assert!(
                    warm.cache_hits > 0,
                    "fraction {fraction} left clean shards that must replay: {warm:?}"
                );
            }
            // The committed stores must agree byte for byte too.
            assert_eq!(
                std::fs::read(warm_dir.join("MANIFEST.wsm")).expect("warm manifest"),
                std::fs::read(cold_dir.join("MANIFEST.wsm")).expect("cold manifest"),
                "manifest divergence at fraction {fraction}, threads {threads}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&warm_dir);
    let _ = std::fs::remove_dir_all(&cold_dir);
}

#[test]
fn poisoned_cache_entry_is_detected_and_recomputed() {
    let dir = tmpdir("poison");
    let oracle_dir = tmpdir("poison-oracle");
    let epoch = fixture();
    let base = epoch.run(&dir, 2).expect("populate run");
    assert!(base.cache_misses > 1, "need at least two shards: {base:?}");

    // Flip one bit in the payload of the first cache entry, past the
    // 112-byte header so the keys still match and only the payload
    // digest can catch it.
    let victim = dir.join("ext-00000.wse");
    let mut bytes = std::fs::read(&victim).expect("read cache entry");
    assert!(bytes.len() > 112, "entry has a payload");
    bytes[112] ^= 0x40;
    std::fs::write(&victim, bytes).expect("rewrite cache entry");

    let warm = epoch.run(&dir, 2).expect("warm run over poisoned cache");
    assert!(
        warm.cache_invalidations >= 1,
        "the flipped payload must be rejected: {warm:?}"
    );
    assert!(
        warm.cache_misses >= 1,
        "the rejected entry must be recomputed: {warm:?}"
    );
    let cold = epoch.run_cold(&oracle_dir, 2).expect("cold oracle");
    assert_eq!(
        warm.output_digest, cold.output_digest,
        "recomputation after poisoning must converge to the cold bytes"
    );
    // The rewritten cache entry must now verify again: a second warm run
    // replays everything.
    let healed = epoch.run(&dir, 2).expect("healed run");
    assert_eq!(healed.cache_invalidations, 0, "{healed:?}");
    assert_eq!(healed.cache_misses, 0, "{healed:?}");
    assert_eq!(healed.output_digest, cold.output_digest);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&oracle_dir);
}

#[test]
fn extractor_fingerprint_keys_the_cache() {
    // Same corpus, different extraction config (a different training
    // seed) → different fingerprint → every carried entry is an
    // invalidation, and the two runs' digests differ only through the
    // manifest's fingerprint section (occurrences are classifier-free
    // for Banks, but the manifest commits the fingerprint).
    let a = fixture();
    let mut other = StudyConfig::quick().with_scale(0.02);
    other.seed = Seed(999);
    let b = Epoch::new(Domain::Banks, other).with_shard_bytes(16 << 10);
    assert_ne!(
        a.extractor_fingerprint(),
        b.extractor_fingerprint(),
        "config seed must re-key the cache"
    );
}

/// Golden pin: the output digest of a fixed scenario (populate, mutate
/// 5% with seed 3, warm re-run) — catches silent drift in any layer the
/// digest covers: page bytes, extraction, coverage, graph, manifest.
#[test]
fn epoch_digest_matches_golden() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/EPOCH.sha256");
    let dir = tmpdir("golden");
    let mut epoch = fixture();
    epoch.run(&dir, 2).expect("populate run");
    epoch.mutate(0.05, Seed(3));
    let warm = epoch.run(&dir, 2).expect("warm run");
    let _ = std::fs::remove_dir_all(&dir);
    let actual = warm.digest_hex();

    if std::env::var("WEBSTRUCT_BLESS").map_or(false, |v| v == "1") {
        let body = format!(
            "# Output digest of the golden epoch scenario (banks, quick scale 0.02,\n\
             # 16 KiB shards, mutate 5% with seed 3, warm re-run at 2 threads).\n\
             # Re-bless with scripts/bless.sh after an INTENTIONAL output change.\n\
             {actual}  epoch-banks-quick\n"
        );
        std::fs::write(&golden_path, body).expect("write EPOCH.sha256");
        eprintln!("blessed {}", golden_path.display());
        return;
    }
    let text = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}; run scripts/bless.sh", golden_path.display()));
    let expected = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().next())
        .unwrap_or_else(|| panic!("no digest line in {}", golden_path.display()));
    assert_eq!(
        actual, expected,
        "epoch output digest drifted from tests/EPOCH.sha256 — if the change\n\
         is intentional, re-bless with scripts/bless.sh"
    );
}
