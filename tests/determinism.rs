//! The parallel execution layer's contract: every parallel path produces
//! byte-identical figures, tables and occurrence lists to the sequential
//! (`WEBSTRUCT_THREADS=1`) path.
//!
//! Thread counts are driven through the `WEBSTRUCT_THREADS` environment
//! variable — the same knob operators use — so these tests serialise
//! their env mutations through a process-wide lock. Determinism means
//! the *results* of any concurrently running test are unaffected; only
//! scheduling changes.

use std::sync::{Mutex, MutexGuard, OnceLock};
use webstruct::core::experiments::discovery::discovery_under_failure;
use webstruct::core::runner::run_all;
use webstruct::core::study::{DataSource, DomainStudy, StudyConfig};
use webstruct::corpus::domain::{Attribute, Domain};
use webstruct::corpus::page::PageConfig;
use webstruct::extract::Extractor;
use webstruct::util::obs;
use webstruct::util::par;
use webstruct::util::rng::Seed;

fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("env lock poisoned")
}

/// Run `f` with `WEBSTRUCT_THREADS` pinned to `threads`.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = env_lock();
    std::env::set_var(par::THREADS_ENV, threads.to_string());
    let out = f();
    std::env::remove_var(par::THREADS_ENV);
    out
}

/// Reset the global metric registries, run `f` at `threads`, and return
/// the resulting snapshot's deterministic JSON rendering — counters and
/// histograms, the space the determinism contract covers. Gauges are
/// deliberately outside it: per-worker load gauges (`extract.worker_bytes.*`)
/// and timing-derived bench gauges legitimately vary with the thread
/// count. The whole measurement runs under the env lock, which every
/// metrics-publishing test in this binary also holds — so nothing
/// pollutes the registry mid-measurement.
fn metrics_snapshot_at(threads: usize, f: impl FnOnce()) -> String {
    with_threads(threads, || {
        obs::metrics().reset();
        f();
        obs::metrics().snapshot().to_deterministic_json()
    })
}

#[test]
fn threads_env_override_is_respected() {
    let _ = with_threads(3, || assert_eq!(par::num_threads(), 3));
    let _ = with_threads(1, || assert_eq!(par::num_threads(), 1));
}

#[test]
fn run_all_is_identical_across_thread_counts() {
    let cfg = StudyConfig::quick();
    let baseline = with_threads(1, || run_all(&cfg));
    assert_eq!(baseline.figures.len(), 33);
    for threads in [2, 8] {
        let parallel = with_threads(threads, || run_all(&cfg));
        assert_eq!(
            parallel.figures, baseline.figures,
            "figures diverged at {threads} threads"
        );
        assert_eq!(
            parallel.tables, baseline.tables,
            "tables diverged at {threads} threads"
        );
    }
}

#[test]
fn fault_injected_run_is_identical_across_thread_counts() {
    // The fault layer's retry loops, backoff clocks and circuit breakers
    // must not leak scheduling into results: a faulty sweep is as
    // deterministic as a clean run.
    use webstruct::core::cache::Study;
    use webstruct::corpus::domain::Domain;
    let baseline = with_threads(1, || {
        let study = Study::new(StudyConfig::quick());
        discovery_under_failure(&study, Domain::Restaurants, 400)
    });
    for threads in [2, 8] {
        let parallel = with_threads(threads, || {
            let study = Study::new(StudyConfig::quick());
            discovery_under_failure(&study, Domain::Restaurants, 400)
        });
        assert_eq!(
            parallel.0, baseline.0,
            "failure figure diverged at {threads} threads"
        );
        assert_eq!(
            parallel.1, baseline.1,
            "counter table diverged at {threads} threads"
        );
    }
}

#[test]
fn extracted_source_run_is_identical_across_thread_counts() {
    // Extracted source renders every page; keep the corpus small.
    let cfg = StudyConfig::quick()
        .with_scale(0.02)
        .with_source(DataSource::Extracted);
    let baseline = with_threads(1, || run_all(&cfg));
    let parallel = with_threads(4, || run_all(&cfg));
    assert_eq!(parallel.figures, baseline.figures);
    assert_eq!(parallel.tables, baseline.tables);
}

#[test]
fn metrics_snapshot_is_identical_across_thread_counts() {
    // The observability contract: the full counter/histogram snapshot —
    // not just the figure bytes — is byte-identical for any
    // WEBSTRUCT_THREADS. Wall-clock data lives in spans and per-worker
    // load data in gauges; both are deliberately outside the snapshot.
    let cfg = StudyConfig::quick();
    let baseline = metrics_snapshot_at(1, || {
        let _ = run_all(&cfg);
    });
    assert!(baseline.contains("cache.domain_requests"), "snapshot: {baseline}");
    assert!(baseline.contains("runner.figures"), "snapshot: {baseline}");
    for threads in [2, 8] {
        let snap = metrics_snapshot_at(threads, || {
            let _ = run_all(&cfg);
        });
        assert_eq!(snap, baseline, "metrics snapshot diverged at {threads} threads");
    }
}

#[test]
fn metrics_snapshot_identical_across_threads_under_fault_injection() {
    // Same contract with the fault layer live: the failure sweep runs
    // 10% and 30% FaultPlans through retries, backoff and breakers, and
    // the fetch.* counters must still not depend on scheduling.
    use webstruct::core::cache::Study;
    let snapshot_for = |threads: usize| {
        metrics_snapshot_at(threads, || {
            let study = Study::new(StudyConfig::quick());
            let _ = discovery_under_failure(&study, Domain::Restaurants, 400);
        })
    };
    let baseline = snapshot_for(1);
    assert!(baseline.contains("fetch.attempts"), "snapshot: {baseline}");
    assert!(baseline.contains("fetch.retries"), "snapshot: {baseline}");
    for threads in [2, 8] {
        let snap = snapshot_for(threads);
        assert_eq!(snap, baseline, "fault-run snapshot diverged at {threads} threads");
    }
}

#[test]
fn extracted_metrics_snapshot_identical_across_thread_counts() {
    // The sharded render→extract path: per-shard scratch-local counters
    // merged at join must equal the sequential totals, including the
    // page-size histogram.
    let cfg = StudyConfig::quick().with_scale(0.02);
    let study = DomainStudy::generate(Domain::Restaurants, &cfg);
    let extractor = Extractor::new(&study.catalog);
    let snapshot_for = |threads: usize| {
        metrics_snapshot_at(threads, || {
            let _ = extractor.extract_web(&study.web, &PageConfig::default(), Seed(77), threads);
        })
    };
    let baseline = snapshot_for(1);
    assert!(baseline.contains("extract.pages"), "snapshot: {baseline}");
    assert!(baseline.contains("extract.page_bytes"), "snapshot: {baseline}");
    assert!(baseline.contains("corpus.pages_rendered"), "snapshot: {baseline}");
    for threads in [2, 8] {
        let snap = snapshot_for(threads);
        assert_eq!(snap, baseline, "extract snapshot diverged at {threads} threads");
    }
}

#[test]
fn extract_all_occurrences_identical_across_thread_counts() {
    // Holds the env lock (without touching the env) so its metric
    // publications never land inside another test's measurement window.
    let _guard = env_lock();
    let cfg = StudyConfig::quick().with_scale(0.02);
    let study = DomainStudy::generate(Domain::Restaurants, &cfg);
    let extractor = Extractor::new(&study.catalog);
    let seed = Seed(77);
    let baseline = extractor.extract_web(&study.web, &PageConfig::default(), seed, 1);
    for threads in [2, 8] {
        let parallel = extractor.extract_web(&study.web, &PageConfig::default(), seed, threads);
        for attr in [Attribute::Phone, Attribute::Homepage, Attribute::Review] {
            assert_eq!(
                parallel.occurrence_lists(attr),
                baseline.occurrence_lists(attr),
                "{attr:?} diverged at {threads} threads"
            );
            assert_eq!(
                parallel.total_occurrences(attr),
                baseline.total_occurrences(attr)
            );
        }
        assert_eq!(parallel.pages_processed, baseline.pages_processed);
    }
}

#[test]
fn iofault_plans_are_seed_pure_at_every_thread_count() {
    // The storage-fault layer joins the determinism contract: the same
    // plan seed must reproduce the same failure sequence — and the same
    // crashed-then-recovered store — no matter what WEBSTRUCT_THREADS
    // says, because fault decisions are pure functions of (seed, op,
    // kind), never of scheduling.
    use webstruct::corpus::ShardStore;
    use webstruct::util::iofault::{FaultSession, IoFaultPlan, OpKind};

    let kinds = [
        OpKind::Create,
        OpKind::Write,
        OpKind::Seek,
        OpKind::Fsync,
        OpKind::Rename,
        OpKind::SyncDir,
    ];
    let sequence_of = |plan: &IoFaultPlan| {
        let mut seq = Vec::new();
        for op in 0..400u64 {
            for kind in kinds {
                seq.push(format!("{:?}", plan.fault_for(op, kind, 4096)));
            }
        }
        seq
    };
    let baseline = sequence_of(&IoFaultPlan::flaky(0.07, 0.5, Seed(99)));
    for threads in [1usize, 2, 8] {
        let seq = with_threads(threads, || sequence_of(&IoFaultPlan::flaky(0.07, 0.5, Seed(99))));
        assert_eq!(seq, baseline, "fault sequence diverged at {threads} threads");
    }

    // End to end: crash the same write at the same op under different
    // thread counts; the surviving files and the recovered store must be
    // byte-identical.
    let cfg = StudyConfig::quick().with_scale(0.01);
    let study = DomainStudy::generate(Domain::Restaurants, &cfg);
    let run = |threads: usize, tag: &str| {
        with_threads(threads, || {
            let dir = std::env::temp_dir().join(format!(
                "webstruct-iofault-det-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let session = FaultSession::new(IoFaultPlan::crash_at(33, Seed(4)));
            let crashed = ShardStore::write_with_session(
                &dir,
                &study.web,
                &study.catalog,
                &PageConfig::default(),
                Seed(9),
                256 * 1024,
                &session,
            );
            assert!(crashed.is_err(), "crash at op 33 did not surface");
            let error = format!("{}", crashed.err().expect("crash error"));
            ShardStore::write_resumable(
                &dir,
                &study.web,
                &study.catalog,
                &PageConfig::default(),
                Seed(9),
                256 * 1024,
            )
            .expect("resume");
            let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
                .expect("read store dir")
                .map(|e| e.expect("dir entry"))
                .filter(|e| e.path().is_file())
                .map(|e| {
                    (
                        e.file_name().to_string_lossy().into_owned(),
                        std::fs::read(e.path()).expect("read file"),
                    )
                })
                .collect();
            files.sort();
            let _ = std::fs::remove_dir_all(&dir);
            (error, session.ops_issued(), files)
        })
    };
    let baseline = run(1, "t1");
    for threads in [2usize, 8] {
        let other = run(threads, &format!("t{threads}"));
        assert_eq!(other, baseline, "recovery diverged at {threads} threads");
    }
}

#[test]
fn oracle_and_extracted_sources_agree_under_parallel_path() {
    let cfg = StudyConfig::quick().with_scale(0.02);
    let study = DomainStudy::generate(Domain::Banks, &cfg);
    let oracle = study.occurrence_lists(Attribute::Phone, &cfg);
    let extracted = with_threads(8, || {
        study.occurrence_lists(
            Attribute::Phone,
            &cfg.clone().with_source(DataSource::Extracted),
        )
    });
    assert_eq!(oracle, extracted);
}
