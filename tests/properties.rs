//! Property-based tests (proptest) on the core data structures and
//! invariants of the workspace.

use proptest::prelude::*;
use webstruct::corpus::isbn::Isbn;
use webstruct::corpus::phone::{PhoneFormat, PhoneNumber};
use webstruct::coverage::{greedy_cover, k_coverage};
use webstruct::extract::phone_scan::scan_phones;
use webstruct::graph::{component_stats, double_sweep, eccentricity, ifub_diameter, BipartiteGraph};
use webstruct::util::ids::EntityId;
use webstruct::util::sample::AliasTable;
use webstruct::util::rng::{Seed, Xoshiro256};
use webstruct::crawl::{crawl, Fifo, SearchIndex};
use webstruct::dedup::{jaro, jaro_winkler, normalize, token_jaccard};

/// Strategy: a random occurrence table over `n` entities.
fn occurrence_table(max_entities: u32, max_sites: usize) -> impl Strategy<Value = (usize, Vec<Vec<EntityId>>)> {
    (2..max_entities).prop_flat_map(move |n| {
        let sites = prop::collection::vec(
            prop::collection::vec(0..n, 0..24usize),
            0..max_sites,
        );
        sites.prop_map(move |raw| {
            let lists = raw
                .into_iter()
                .map(|l| l.into_iter().map(EntityId::new).collect())
                .collect();
            (n as usize, lists)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn phone_scanner_finds_any_valid_phone_in_any_format(
        area in 200u16..1000,
        exchange in 200u16..1000,
        line in 0u16..10000,
        fmt_idx in 0usize..6,
        prefix in "[a-zA-Z ,.]{0,20}",
        suffix in "[a-zA-Z ,.]{0,20}",
    ) {
        prop_assume!(area % 100 != 11 && exchange % 100 != 11);
        let phone = PhoneNumber::new(area, exchange, line).unwrap();
        let fmt = PhoneFormat::ALL[fmt_idx];
        let text = format!("{prefix} {} {suffix}", phone.format(fmt));
        let found = scan_phones(&text);
        prop_assert!(
            found.iter().any(|m| m.phone == phone),
            "missed {} in {text:?}", phone.format(fmt)
        );
    }

    #[test]
    fn phone_scanner_never_reports_invalid_numbers(text in "[0-9()+. -]{0,60}") {
        for m in scan_phones(&text) {
            // Every reported number must survive NANP re-validation.
            prop_assert!(PhoneNumber::from_digits(m.phone.digits()).is_ok());
        }
    }

    #[test]
    fn isbn_roundtrips_and_rejects_corruption(core in 0u64..1_000_000_000) {
        let isbn = Isbn::new(core).unwrap();
        for rendering in [
            isbn.to_isbn10(),
            isbn.to_isbn10_hyphenated(),
            isbn.to_isbn13(),
            isbn.to_isbn13_hyphenated(),
        ] {
            prop_assert_eq!(Isbn::parse(&rendering), Ok(isbn));
        }
        // Single-digit corruption of the plain forms must be rejected
        // (check digits catch all single-digit substitutions).
        let s = isbn.to_isbn13();
        let bytes = s.as_bytes();
        for i in 0..bytes.len() {
            let orig = bytes[i] - b'0';
            let replaced = (orig + 1) % 10;
            let mut corrupted = s.clone().into_bytes();
            corrupted[i] = b'0' + replaced;
            let corrupted = String::from_utf8(corrupted).unwrap();
            if let Ok(parsed) = Isbn::parse(&corrupted) {
                prop_assert_ne!(parsed, isbn, "corruption at {} undetected", i);
            }
        }
    }

    #[test]
    fn k_coverage_invariants((n, lists) in occurrence_table(200, 40)) {
        let cov = k_coverage(n, &lists, 10).unwrap();
        for k in 1..=10usize {
            let curve = &cov.curves[k - 1];
            // Bounded and monotone non-decreasing in t.
            for w in curve.windows(2) {
                prop_assert!(w[1] + 1e-12 >= w[0]);
            }
            for &c in curve {
                prop_assert!((0.0..=1.0).contains(&c));
            }
            // Anti-monotone in k at every tick.
            if k > 1 {
                for (hi, lo) in cov.curves[k - 2].iter().zip(curve) {
                    prop_assert!(lo <= hi);
                }
            }
        }
        // Final 1-coverage equals the distinct-entity fraction.
        if let Some(&last) = cov.curves[0].last() {
            let mut all: Vec<u32> = lists.iter().flatten().map(|e| e.raw()).collect();
            all.sort_unstable();
            all.dedup();
            prop_assert!((last - all.len() as f64 / n as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn greedy_cover_invariants((n, lists) in occurrence_table(150, 30)) {
        let g = greedy_cover(n, &lists).unwrap();
        // Monotone coverage, bounded by 1.
        for w in g.coverage.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        // Final coverage equals the union coverage.
        if let Some(&last) = g.coverage.last() {
            let mut all: Vec<u32> = lists.iter().flatten().map(|e| e.raw()).collect();
            all.sort_unstable();
            all.dedup();
            prop_assert!((last - all.len() as f64 / n as f64).abs() < 1e-9);
        }
        // Picks are distinct sites.
        let mut picks = g.pick_order.clone();
        picks.sort_unstable();
        picks.dedup();
        prop_assert_eq!(picks.len(), g.pick_order.len());
    }

    #[test]
    fn component_stats_invariants((n, lists) in occurrence_table(150, 30)) {
        let graph = BipartiteGraph::from_occurrences(n, &lists).unwrap();
        let stats = component_stats(&graph, &[]);
        prop_assert!(stats.largest_entities <= stats.entities_present);
        prop_assert!(stats.n_components <= stats.entities_present);
        prop_assert_eq!(stats.entities_present, graph.entities_present());
        if stats.entities_present > 0 {
            prop_assert!(stats.n_components >= 1);
            prop_assert!(stats.largest_fraction() > 0.0);
            prop_assert!(stats.largest_fraction() <= 1.0);
        }
        // Removing all sites empties the graph.
        let all_sites: Vec<usize> = (0..lists.len()).collect();
        let removed = component_stats(&graph, &all_sites);
        prop_assert_eq!(removed.entities_present, 0);
    }

    #[test]
    fn diameter_bounds((n, lists) in occurrence_table(80, 20)) {
        let graph = BipartiteGraph::from_occurrences(n, &lists).unwrap();
        let exact = ifub_diameter(&graph, 1_000_000);
        prop_assert!(exact.exact);
        // Double sweep from the max-degree node lower-bounds the exact
        // diameter of that node's component.
        if let Some(start) = (0..graph.n_nodes() as u32).max_by_key(|&v| graph.degree(v)) {
            if graph.degree(start) > 0 {
                let ds = double_sweep(&graph, start);
                prop_assert!(ds.value <= exact.value);
                // Any node's eccentricity in that component never exceeds
                // the diameter.
                prop_assert!(eccentricity(&graph, start) <= exact.value);
            }
        }
    }

    #[test]
    fn alias_table_samples_in_range(weights in prop::collection::vec(0.0f64..100.0, 1..50)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let mut rng = Xoshiro256::from_seed(Seed(1));
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
            // Zero-weight buckets are never drawn.
            prop_assert!(weights[i] > 0.0, "sampled zero-weight bucket {i}");
        }
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = Xoshiro256::from_seed(Seed(seed));
        let mut b = Xoshiro256::from_seed(Seed(seed));
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ifub_matches_brute_force_diameter((n, lists) in occurrence_table(24, 10)) {
        let graph = BipartiteGraph::from_occurrences(n, &lists).unwrap();
        let fast = ifub_diameter(&graph, 1_000_000);
        prop_assert!(fast.exact);
        // Brute force: max eccentricity over all nodes of the
        // largest-entity component's... iFUB reports the diameter of the
        // component containing the max-degree node; brute-force that
        // component.
        let start = (0..graph.n_nodes() as u32)
            .max_by_key(|&v| graph.degree(v))
            .unwrap_or(0);
        if graph.degree(start) == 0 {
            prop_assert_eq!(fast.value, 0);
            return Ok(());
        }
        // Collect the component of `start`.
        let mut comp = Vec::new();
        let mut seen = vec![false; graph.n_nodes()];
        let mut queue = std::collections::VecDeque::new();
        seen[start as usize] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for v in graph.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        let brute = comp
            .iter()
            .map(|&u| eccentricity(&graph, u))
            .max()
            .unwrap_or(0);
        prop_assert_eq!(fast.value, brute, "iFUB {} vs brute {}", fast.value, brute);
    }

    #[test]
    fn crawler_invariants((n, lists) in occurrence_table(120, 25)) {
        let index = SearchIndex::build(n, &lists, None);
        let seed_entity = EntityId::new(0);
        let result = crawl(&index, &lists, Fifo::default(), &[seed_entity], usize::MAX);
        // Trace is monotone; totals are bounded by the universe.
        prop_assert!(result.entities_found <= n);
        prop_assert!(result.sites_fetched <= lists.len());
        prop_assert!(result.trace.windows(2).all(|w| w[1].1 >= w[0].1));
        prop_assert!(result.exhausted, "unbudgeted crawls drain");
        // An unbudgeted crawl recovers exactly the seed's connected
        // component (checked against the graph library).
        let graph = BipartiteGraph::from_occurrences(n, &lists).unwrap();
        let mut reach = vec![false; graph.n_nodes()];
        let mut queue = std::collections::VecDeque::new();
        reach[0] = true;
        queue.push_back(0u32);
        while let Some(u) = queue.pop_front() {
            for v in graph.neighbors(u) {
                if !reach[v as usize] {
                    reach[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        let component_entities = reach[..n].iter().filter(|&&r| r).count();
        prop_assert_eq!(result.entities_found, component_entities);
    }

    #[test]
    fn similarity_metrics_are_sane(a in "[a-z ]{0,16}", b in "[a-z ]{0,16}") {
        for f in [jaro, jaro_winkler, token_jaccard] {
            let ab = f(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
            prop_assert!((f(&b, &a) - ab).abs() < 1e-12, "symmetry");
        }
        // Identity.
        prop_assert!(jaro(&a, &a) > 0.999 || a.is_empty());
        // Normalisation is idempotent.
        let na = normalize(&a);
        let nna = normalize(&na);
        prop_assert_eq!(nna.as_str(), na.as_str());
    }
}

