//! Property-style tests on the core data structures and invariants of
//! the workspace.
//!
//! These were originally proptest properties; the offline build
//! environment cannot resolve external crates, so each property is now a
//! seeded deterministic loop over [`Xoshiro256`]-generated cases. Same
//! invariants, fixed case streams, reproducible failures.

use webstruct::corpus::isbn::Isbn;
use webstruct::corpus::phone::{PhoneFormat, PhoneNumber};
use webstruct::coverage::{greedy_cover, k_coverage};
use webstruct::crawl::{crawl, Fifo, SearchIndex};
use webstruct::dedup::{jaro, jaro_winkler, normalize, token_jaccard};
use webstruct::extract::phone_scan::scan_phones;
use webstruct::graph::{component_stats, double_sweep, eccentricity, ifub_diameter, BipartiteGraph};
use webstruct::util::ids::EntityId;
use webstruct::util::rng::{Seed, Xoshiro256};
use webstruct::util::sample::AliasTable;

/// Cases per property — matches the proptest configuration it replaces.
const CASES: usize = 64;

/// A random string over `charset` with length in `[0, max_len]`.
fn rand_string(rng: &mut Xoshiro256, charset: &[u8], max_len: usize) -> String {
    let len = rng.usize_below(max_len + 1);
    (0..len)
        .map(|_| char::from(charset[rng.usize_below(charset.len())]))
        .collect()
}

const PROSE: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ ,.";
const PHONEISH: &[u8] = b"0123456789()+. -";
const LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz ";

/// A random occurrence table over up to `max_entities` entities and
/// `max_sites` sites (the proptest strategy, made deterministic).
fn occurrence_table(
    rng: &mut Xoshiro256,
    max_entities: u32,
    max_sites: usize,
) -> (usize, Vec<Vec<EntityId>>) {
    let n = rng.range_u64(2, u64::from(max_entities)) as u32;
    let n_sites = rng.usize_below(max_sites);
    let lists = (0..n_sites)
        .map(|_| {
            let len = rng.usize_below(24);
            (0..len)
                .map(|_| EntityId::new(rng.u64_below(u64::from(n)) as u32))
                .collect()
        })
        .collect();
    (n as usize, lists)
}

#[test]
fn phone_scanner_finds_any_valid_phone_in_any_format() {
    let mut rng = Xoshiro256::from_seed(Seed(101));
    let mut checked = 0;
    while checked < CASES {
        let area = rng.range_u64(200, 1000) as u16;
        let exchange = rng.range_u64(200, 1000) as u16;
        if area % 100 == 11 || exchange % 100 == 11 {
            continue;
        }
        checked += 1;
        let line = rng.u64_below(10_000) as u16;
        let fmt = PhoneFormat::ALL[rng.usize_below(6)];
        let phone = PhoneNumber::new(area, exchange, line).unwrap();
        let prefix = rand_string(&mut rng, PROSE, 20);
        let suffix = rand_string(&mut rng, PROSE, 20);
        let text = format!("{prefix} {} {suffix}", phone.format(fmt));
        let found = scan_phones(&text);
        assert!(
            found.iter().any(|m| m.phone == phone),
            "missed {} in {text:?}",
            phone.format(fmt)
        );
    }
}

#[test]
fn phone_scanner_never_reports_invalid_numbers() {
    let mut rng = Xoshiro256::from_seed(Seed(102));
    for _ in 0..CASES {
        let text = rand_string(&mut rng, PHONEISH, 60);
        for m in scan_phones(&text) {
            // Every reported number must survive NANP re-validation.
            assert!(
                PhoneNumber::from_digits(m.phone.digits()).is_ok(),
                "invalid phone reported in {text:?}"
            );
        }
    }
}

#[test]
fn isbn_roundtrips_and_rejects_corruption() {
    let mut rng = Xoshiro256::from_seed(Seed(103));
    for _ in 0..CASES {
        let core = rng.u64_below(1_000_000_000);
        let isbn = Isbn::new(core).unwrap();
        for rendering in [
            isbn.to_isbn10(),
            isbn.to_isbn10_hyphenated(),
            isbn.to_isbn13(),
            isbn.to_isbn13_hyphenated(),
        ] {
            assert_eq!(Isbn::parse(&rendering), Ok(isbn));
        }
        // Single-digit corruption of the plain forms must be rejected
        // (check digits catch all single-digit substitutions).
        let s = isbn.to_isbn13();
        let bytes = s.as_bytes();
        for i in 0..bytes.len() {
            let orig = bytes[i] - b'0';
            let replaced = (orig + 1) % 10;
            let mut corrupted = s.clone().into_bytes();
            corrupted[i] = b'0' + replaced;
            let corrupted = String::from_utf8(corrupted).unwrap();
            if let Ok(parsed) = Isbn::parse(&corrupted) {
                assert_ne!(parsed, isbn, "corruption at {i} undetected");
            }
        }
    }
}

#[test]
fn k_coverage_invariants() {
    let mut rng = Xoshiro256::from_seed(Seed(104));
    for _ in 0..CASES {
        let (n, lists) = occurrence_table(&mut rng, 200, 40);
        let cov = k_coverage(n, &lists, 10).unwrap();
        for k in 1..=10usize {
            let curve = &cov.curves[k - 1];
            // Bounded and monotone non-decreasing in t.
            for w in curve.windows(2) {
                assert!(w[1] + 1e-12 >= w[0]);
            }
            for &c in curve {
                assert!((0.0..=1.0).contains(&c));
            }
            // Anti-monotone in k at every tick.
            if k > 1 {
                for (hi, lo) in cov.curves[k - 2].iter().zip(curve) {
                    assert!(lo <= hi);
                }
            }
        }
        // Final 1-coverage equals the distinct-entity fraction.
        if let Some(&last) = cov.curves[0].last() {
            let mut all: Vec<u32> = lists.iter().flatten().map(|e| e.raw()).collect();
            all.sort_unstable();
            all.dedup();
            assert!((last - all.len() as f64 / n as f64).abs() < 1e-9);
        }
    }
}

#[test]
fn greedy_cover_invariants() {
    let mut rng = Xoshiro256::from_seed(Seed(105));
    for _ in 0..CASES {
        let (n, lists) = occurrence_table(&mut rng, 150, 30);
        let g = greedy_cover(n, &lists).unwrap();
        // Monotone coverage, bounded by 1.
        for w in g.coverage.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Final coverage equals the union coverage.
        if let Some(&last) = g.coverage.last() {
            let mut all: Vec<u32> = lists.iter().flatten().map(|e| e.raw()).collect();
            all.sort_unstable();
            all.dedup();
            assert!((last - all.len() as f64 / n as f64).abs() < 1e-9);
        }
        // Picks are distinct sites.
        let mut picks = g.pick_order.clone();
        picks.sort_unstable();
        picks.dedup();
        assert_eq!(picks.len(), g.pick_order.len());
    }
}

#[test]
fn component_stats_invariants() {
    let mut rng = Xoshiro256::from_seed(Seed(106));
    for _ in 0..CASES {
        let (n, lists) = occurrence_table(&mut rng, 150, 30);
        let graph = BipartiteGraph::from_occurrences(n, &lists).unwrap();
        let stats = component_stats(&graph, &[]);
        assert!(stats.largest_entities <= stats.entities_present);
        assert!(stats.n_components <= stats.entities_present);
        assert_eq!(stats.entities_present, graph.entities_present());
        if stats.entities_present > 0 {
            assert!(stats.n_components >= 1);
            assert!(stats.largest_fraction() > 0.0);
            assert!(stats.largest_fraction() <= 1.0);
        }
        // Removing all sites empties the graph.
        let all_sites: Vec<usize> = (0..lists.len()).collect();
        let removed = component_stats(&graph, &all_sites);
        assert_eq!(removed.entities_present, 0);
    }
}

#[test]
fn diameter_bounds() {
    let mut rng = Xoshiro256::from_seed(Seed(107));
    for _ in 0..CASES {
        let (n, lists) = occurrence_table(&mut rng, 80, 20);
        let graph = BipartiteGraph::from_occurrences(n, &lists).unwrap();
        let exact = ifub_diameter(&graph, 1_000_000);
        assert!(exact.exact);
        // Double sweep from the max-degree node lower-bounds the exact
        // diameter of that node's component.
        if let Some(start) = (0..graph.n_nodes() as u32).max_by_key(|&v| graph.degree(v)) {
            if graph.degree(start) > 0 {
                let ds = double_sweep(&graph, start);
                assert!(ds.value <= exact.value);
                // Any node's eccentricity in that component never exceeds
                // the diameter.
                assert!(eccentricity(&graph, start) <= exact.value);
            }
        }
    }
}

#[test]
fn alias_table_samples_in_range() {
    let mut rng = Xoshiro256::from_seed(Seed(108));
    let mut checked = 0;
    while checked < CASES {
        let len = rng.range_u64(1, 50) as usize;
        let weights: Vec<f64> = (0..len).map(|_| rng.range_f64(0.0, 100.0)).collect();
        if weights.iter().sum::<f64>() <= 0.0 {
            continue;
        }
        checked += 1;
        let table = AliasTable::new(&weights);
        let mut draw_rng = Xoshiro256::from_seed(Seed(1));
        for _ in 0..200 {
            let i = table.sample(&mut draw_rng);
            assert!(i < weights.len());
            // Zero-weight buckets are never drawn.
            assert!(weights[i] > 0.0, "sampled zero-weight bucket {i}");
        }
    }
}

#[test]
fn rng_streams_are_reproducible() {
    let mut rng = Xoshiro256::from_seed(Seed(109));
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let mut a = Xoshiro256::from_seed(Seed(seed));
        let mut b = Xoshiro256::from_seed(Seed(seed));
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

#[test]
fn ifub_matches_brute_force_diameter() {
    let mut rng = Xoshiro256::from_seed(Seed(110));
    for _ in 0..CASES {
        let (n, lists) = occurrence_table(&mut rng, 24, 10);
        let graph = BipartiteGraph::from_occurrences(n, &lists).unwrap();
        let fast = ifub_diameter(&graph, 1_000_000);
        assert!(fast.exact);
        // iFUB reports the diameter of the component containing the
        // max-degree node; brute-force that component.
        let start = (0..graph.n_nodes() as u32)
            .max_by_key(|&v| graph.degree(v))
            .unwrap_or(0);
        if graph.degree(start) == 0 {
            assert_eq!(fast.value, 0);
            continue;
        }
        // Collect the component of `start`.
        let mut comp = Vec::new();
        let mut seen = vec![false; graph.n_nodes()];
        let mut queue = std::collections::VecDeque::new();
        seen[start as usize] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for v in graph.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        let brute = comp
            .iter()
            .map(|&u| eccentricity(&graph, u))
            .max()
            .unwrap_or(0);
        assert_eq!(fast.value, brute, "iFUB {} vs brute {}", fast.value, brute);
    }
}

#[test]
fn crawler_invariants() {
    let mut rng = Xoshiro256::from_seed(Seed(111));
    for _ in 0..CASES {
        let (n, lists) = occurrence_table(&mut rng, 120, 25);
        let index = SearchIndex::build(n, &lists, None);
        let seed_entity = EntityId::new(0);
        let result = crawl(&index, &lists, Fifo::default(), &[seed_entity], usize::MAX);
        // Trace is monotone; totals are bounded by the universe.
        assert!(result.entities_found <= n);
        assert!(result.sites_fetched <= lists.len());
        assert!(result.trace.windows(2).all(|w| w[1].1 >= w[0].1));
        assert!(result.exhausted, "unbudgeted crawls drain");
        // An unbudgeted crawl recovers exactly the seed's connected
        // component (checked against the graph library).
        let graph = BipartiteGraph::from_occurrences(n, &lists).unwrap();
        let mut reach = vec![false; graph.n_nodes()];
        let mut queue = std::collections::VecDeque::new();
        reach[0] = true;
        queue.push_back(0u32);
        while let Some(u) = queue.pop_front() {
            for v in graph.neighbors(u) {
                if !reach[v as usize] {
                    reach[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        let component_entities = reach[..n].iter().filter(|&&r| r).count();
        assert_eq!(result.entities_found, component_entities);
    }
}

#[test]
fn similarity_metrics_are_sane() {
    let mut rng = Xoshiro256::from_seed(Seed(112));
    for _ in 0..CASES {
        let a = rand_string(&mut rng, LOWER, 16);
        let b = rand_string(&mut rng, LOWER, 16);
        for f in [jaro, jaro_winkler, token_jaccard] {
            let ab = f(&a, &b);
            assert!((0.0..=1.0 + 1e-12).contains(&ab));
            assert!((f(&b, &a) - ab).abs() < 1e-12, "symmetry on {a:?}/{b:?}");
        }
        // Identity.
        assert!(jaro(&a, &a) > 0.999 || a.is_empty());
        // Normalisation is idempotent.
        let na = normalize(&a);
        let nna = normalize(&na);
        assert_eq!(nna.as_str(), na.as_str());
    }
}
