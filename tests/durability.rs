//! Workspace-level durability contract: the store the CLI `stream`
//! command writes is crash-safe, resumable, and self-describing — killed
//! runs resume to a byte-identical store, corrupted shards are
//! quarantined and re-rendered, and every recovery publishes `store.*`
//! metrics through the observability layer.

use std::path::{Path, PathBuf};
use webstruct::core::study::{DomainStudy, StudyConfig};
use webstruct::corpus::domain::Domain;
use webstruct::corpus::page::PageConfig;
use webstruct::corpus::{ShardStore, StoreManifest};
use webstruct::util::iofault::{FaultSession, IoFaultPlan};
use webstruct::util::obs;
use webstruct::util::rng::Seed;

const TARGET: u64 = 512 * 1024;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "webstruct-durability-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fixture() -> DomainStudy {
    DomainStudy::generate(Domain::Restaurants, &StudyConfig::quick().with_scale(0.02))
}

fn manifest_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(StoreManifest::path_in(dir)).expect("read MANIFEST.wsm")
}

#[test]
fn killed_stream_write_resumes_to_identical_manifest() {
    let study = fixture();
    let cfg = PageConfig::default();
    let seed = Seed(42);

    let cold_dir = temp_dir("cold");
    let session = FaultSession::clean();
    ShardStore::write_with_session(
        &cold_dir, &study.web, &study.catalog, &cfg, seed, TARGET, &session,
    )
    .expect("cold write");
    let total_ops = session.ops_issued();
    let cold_manifest = manifest_bytes(&cold_dir);

    // Kill three different points of the write — early, middle, late —
    // and resume each; the recovered manifest (fingerprint + per-shard
    // digests) must match the cold run bit for bit.
    let dir = temp_dir("killed");
    for frac in [1u64, 5, 9] {
        let _ = std::fs::remove_dir_all(&dir);
        let kill_at = total_ops * frac / 10;
        let session = FaultSession::new(IoFaultPlan::crash_at(kill_at, Seed(frac)));
        assert!(
            ShardStore::write_with_session(
                &dir, &study.web, &study.catalog, &cfg, seed, TARGET, &session,
            )
            .is_err(),
            "kill at op {kill_at} did not surface"
        );
        let (store, report) =
            ShardStore::write_resumable(&dir, &study.web, &study.catalog, &cfg, seed, TARGET)
                .expect("resume after kill");
        assert_eq!(
            report.shards_reused + report.shards_rendered,
            report.shards_total
        );
        assert_eq!(
            manifest_bytes(&dir),
            cold_manifest,
            "manifest diverged after kill at op {kill_at}"
        );
        assert!(ShardStore::open(&dir).is_ok());
        assert!(store.scrub().is_clean());
    }
    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_shard_is_quarantined_and_rebuilt() {
    let study = fixture();
    let cfg = PageConfig::default();
    let seed = Seed(42);
    let dir = temp_dir("quarantine");
    let store = ShardStore::write(&dir, &study.web, &study.catalog, &cfg, seed, TARGET)
        .expect("write store");
    let reference = manifest_bytes(&dir);

    // Flip one payload byte in the middle shard.
    let victim = store.paths()[store.len() / 2].clone();
    let mut bytes = std::fs::read(&victim).expect("read shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).expect("corrupt shard");

    // open() is header-level and cannot see a payload flip — but scrub
    // must, and repair must quarantine + reconstruct.
    let report = ShardStore::scrub_dir(&dir).expect("scrub");
    assert_eq!(report.corrupt(), 1, "scrub missed the flip:\n{}", report.to_text());

    let (_, recovery) =
        ShardStore::repair(&dir, &study.web, &study.catalog, &cfg, seed, TARGET)
            .expect("repair");
    assert_eq!(recovery.shards_quarantined, 1);
    assert_eq!(recovery.shards_rendered, 1);
    assert_eq!(manifest_bytes(&dir), reference);
    assert!(ShardStore::scrub_dir(&dir).expect("re-scrub").is_clean());

    // The corrupted original survives as evidence.
    let quarantined: Vec<_> = std::fs::read_dir(dir.join(".quarantine"))
        .expect("quarantine dir")
        .collect();
    assert_eq!(quarantined.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_publishes_store_metrics() {
    let study = fixture();
    let cfg = PageConfig::default();
    let dir = temp_dir("metrics");
    obs::metrics().reset();
    let (store, _) =
        ShardStore::write_resumable(&dir, &study.web, &study.catalog, &cfg, Seed(7), TARGET)
            .expect("write");
    let _ = store.scrub();
    let snapshot = obs::metrics().snapshot().to_deterministic_json();
    for key in [
        "store.shards_rendered",
        "store.resume_skipped",
        "store.shards_quarantined",
        "store.shards_verified",
    ] {
        assert!(snapshot.contains(key), "missing {key} in:\n{snapshot}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
