//! The §3 "spread of data" study for the restaurant domain: Figures
//! 1(a), 2(a), 4(a), 4(b) and 5, with the paper's headline milestones.
//!
//! Run with `cargo run --release --example restaurant_census [scale]`.

use webstruct::core::cache::Study;
use webstruct::core::experiments::spread;
use webstruct::core::study::StudyConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    println!("== restaurant census (scale {scale}) ==\n");
    let study = Study::new(StudyConfig::default().with_scale(scale));

    // Figure 1(a): phones.
    let fig1 = spread::fig1(&study).into_iter().next().expect("8 panels");
    println!("{}", fig1.ascii_plot(72, 16));
    milestone(&fig1, "phones");

    // Figure 2(a): homepages.
    let fig2 = spread::fig2(&study).into_iter().next().expect("8 panels");
    println!("{}", fig2.ascii_plot(72, 16));
    milestone(&fig2, "homepages");

    // Figure 4: reviews.
    let (fig4a, fig4b) = spread::fig4(&study);
    println!("{}", fig4a.ascii_plot(72, 16));
    milestone(&fig4a, "reviews (entity coverage)");
    println!("{}", fig4b.ascii_plot(72, 12));
    if let Some(s) = fig4b.series.first() {
        if let (Some(c1000), Some(final_y)) = (s.interpolate(1000.0), s.final_y()) {
            println!(
                "  aggregate review pages: top-1000 sites hold {:.0}% of {:.0}%-at-max\n",
                c1000 * 100.0,
                final_y * 100.0
            );
        }
    }

    // Figure 5: does careful site selection beat picking the biggest?
    let fig5 = spread::fig5(&study);
    println!("{}", fig5.ascii_plot(72, 14));
    let by_size = fig5.series_named("Order by Size").expect("series");
    let greedy = fig5.series_named("Greedy Set Cover").expect("series");
    let t = 100.0;
    println!(
        "  1-coverage at top-100 sites: by-size {:.1}% vs greedy {:.1}% — the paper's\n  conclusion: 'a careful choice of hosts does not lead to significant increase'.",
        by_size.interpolate(t).unwrap_or(0.0) * 100.0,
        greedy.interpolate(t).unwrap_or(0.0) * 100.0,
    );
}

fn milestone(fig: &webstruct::util::Figure, what: &str) {
    for (k, target) in [(1usize, 0.9), (5, 0.9)] {
        let series = fig
            .series_named(&format!("k={k}"))
            .expect("k-coverage series");
        let needed = series.first_x_reaching(target);
        match needed {
            Some(t) => println!(
                "  {what}: k={k} reaches {:.0}% coverage at ~{t:.0} sites",
                target * 100.0
            ),
            None => println!(
                "  {what}: k={k} never reaches {:.0}% (max {:.1}%)",
                target * 100.0,
                series.final_y().unwrap_or(0.0) * 100.0
            ),
        }
    }
    println!();
}
