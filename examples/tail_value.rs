//! The §4 "value of tail extraction" study: one simulated year of search
//! and browse traffic over Amazon-, Yelp- and IMDb-like sites, demand
//! curves (Figure 6), demand vs. availability (Figure 7) and the relative
//! value-add of one new review (Figure 8).
//!
//! Run with `cargo run --release --example tail_value [scale]`.

use webstruct::core::cache::Study;
use webstruct::core::experiments::tail_value;
use webstruct::core::study::StudyConfig;
use webstruct::demand::{top_share, Channel, InfoDecay, StudySite};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    println!("== value of tail extraction (scale {scale}) ==\n");
    let study = Study::new(StudyConfig::default().with_scale(scale));

    // Figure 6: aggregate demand.
    let figs = tail_value::fig6(&study);
    println!("{}", figs[0].ascii_plot(72, 16));
    println!("demand concentration (search): share of demand held by the top 20% of inventory");
    for site in StudySite::ALL {
        let t = study.traffic(site);
        println!(
            "  {:<7} {:>5.1}%   (browse: {:>5.1}%)",
            site.slug(),
            100.0 * top_share(&t, Channel::Search, 0.2),
            100.0 * top_share(&t, Channel::Browse, 0.2),
        );
    }
    println!("  ⇒ movie demand is sharpest, local-business demand flattest (paper §4.2)\n");

    // Figure 7: demand vs. number of existing reviews.
    for fig in tail_value::fig7(&study) {
        println!("{}", fig.ascii_plot(72, 12));
    }

    // Figure 8: relative value-add.
    println!("--- Figure 8: average relative value-add VA(n)/VA(0) ---\n");
    for fig in tail_value::fig8(&study) {
        println!("{}", fig.ascii_plot(72, 14));
        for s in &fig.series {
            let head = s.points.last().map_or(0.0, |&(_, y)| y);
            let peak = s
                .points
                .iter()
                .map(|&(_, y)| y)
                .fold(f64::MIN, f64::max);
            println!(
                "  {:<7} head ratio {head:.2}, peak {peak:.2}",
                s.name
            );
        }
        println!();
    }

    // The step-decay sensitivity check the paper discusses.
    let step = tail_value::fig8_with_decay(&study, InfoDecay::Step(10));
    let head = step[1]
        .series_named("search")
        .and_then(|s| s.points.last().copied())
        .map_or(0.0, |(_, y)| y);
    println!(
        "under the step model I∆(n) = 1[n < 10], the amazon head ratio drops to {head:.3} —\nalternative decay models only strengthen the tail-value conclusion (§4.3.1)."
    );
}
