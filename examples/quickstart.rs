//! Quickstart: the whole pipeline on one domain, end to end.
//!
//! Generates a reference restaurant database and a synthetic web, renders
//! every page, runs the real extraction pipeline (phone scanner + review
//! classifier) over the rendered text, and computes the paper's coverage
//! analysis from the extracted relation.
//!
//! Run with `cargo run --release --example quickstart [scale]`.

use webstruct::corpus::domain::{Attribute, Domain};
use webstruct::corpus::entity::{CatalogConfig, EntityCatalog};
use webstruct::corpus::page::{PageConfig, PageStream};
use webstruct::corpus::web::{Web, WebConfig};
use webstruct::coverage::k_coverage;
use webstruct::extract::{train_review_classifier, Extractor};
use webstruct::util::rng::Seed;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let seed = Seed::DEFAULT;

    println!("== webstruct quickstart (scale {scale}) ==\n");

    // 1. The reference database: comprehensive entity list with
    //    identifying attributes (the paper's Yahoo! Business Listings).
    let n_entities = ((20_000.0 * scale) as usize).max(200);
    let catalog = EntityCatalog::generate(
        &CatalogConfig::new(Domain::Restaurants, n_entities),
        seed,
    );
    println!(
        "catalog: {} restaurants, e.g. {:?} at {}",
        catalog.len(),
        catalog.entities[0].name,
        catalog.entities[0].phone.expect("restaurants have phones"),
    );

    // 2. The synthetic web: aggregators, regional directories, niche blogs.
    let web = Web::generate(
        &catalog,
        &WebConfig::preset(Domain::Restaurants).scaled(scale),
        seed,
    );
    println!(
        "web: {} sites, {} (site, entity) mentions",
        web.n_sites(),
        web.n_mentions()
    );

    // 3. Render pages and extract — the expensive, honest path.
    let clf = train_review_classifier(seed.derive("nb"), 300).expect("balanced training set");
    let extractor = Extractor::new(&catalog).with_review_classifier(clf);
    let pages = PageStream::new(&web, &catalog, PageConfig::default(), seed.derive("render"));
    let extracted = extractor.extract_all(web.n_sites(), pages);
    println!(
        "extraction: {} pages processed, {} phone occurrences, {} review-page hits",
        extracted.pages_processed,
        extracted.total_occurrences(Attribute::Phone),
        extracted.total_occurrences(Attribute::Review),
    );

    // 4. The paper's coverage analysis on the *extracted* relation.
    let lists = extracted.occurrence_lists(Attribute::Phone);
    let cov = k_coverage(catalog.len(), &lists, 10).expect("valid relation");
    println!();
    let fig = cov.to_figure("fig1a", "Restaurants phones (extracted)");
    println!("{}", fig.ascii_plot(72, 18));
    for (k, target) in [(1, 0.9), (1, 0.99), (5, 0.9)] {
        match cov.sites_needed(k, target) {
            Some(t) => println!(
                "  k={k}: need the top {t} sites for {:.0}% coverage",
                target * 100.0
            ),
            None => println!(
                "  k={k}: {:.0}% coverage not reachable at this scale",
                target * 100.0
            ),
        }
    }
    println!("\nDone. See examples/restaurant_census.rs for the full §3 study.");
}
