//! Regenerate every table and figure of the paper and write the artifacts
//! (gnuplot `.dat` files + Markdown tables) to `artifacts/`.
//!
//! Run with `cargo run --release --example reproduce_paper [scale] [outdir]`.
//! Scale 1.0 is the documented reproduction scale used by EXPERIMENTS.md.

use webstruct::core::cache::Study;
use webstruct::core::experiments::connectivity;
use webstruct::core::milestones::milestones_table;
use webstruct::core::runner::{run_all, run_extensions, write_outputs};
use webstruct::core::study::StudyConfig;
use webstruct::demand::{top_share, Channel, StudySite};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let outdir = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "artifacts".to_string());
    let config = StudyConfig::default().with_scale(scale);

    println!("== reproducing all tables & figures (scale {scale}) ==");
    let t0 = std::time::Instant::now();
    let output = run_all(&config);
    println!(
        "generated {} figures and {} tables in {:.1?}",
        output.figures.len(),
        output.tables.len(),
        t0.elapsed()
    );
    write_outputs(std::path::Path::new(&outdir), &output).expect("write artifacts");
    let extensions = run_extensions(&config);
    write_outputs(
        &std::path::Path::new(&outdir).join("extensions"),
        &extensions,
    )
    .expect("write extension artifacts");
    println!("artifacts written to {outdir}/ (+ extensions/)\n");
    println!("{}", milestones_table(&output).to_text());

    // ---- Headline milestones (the numbers EXPERIMENTS.md records) ------
    println!("--- paper-vs-measured milestones ---");
    let fig1a = output.figure("fig1a").expect("fig1a");
    let k1 = fig1a.series_named("k=1").unwrap();
    let k5 = fig1a.series_named("k=5").unwrap();
    println!(
        "Fig 1(a) restaurant phones: top-10 k=1 coverage = {:.3} (paper ~0.93); \
         k=5 reaches 90% at ~{} sites (paper ~5000)",
        k1.interpolate(10.0).unwrap_or(0.0),
        k5.first_x_reaching(0.9).map_or("n/a".into(), |x| format!("{x:.0}")),
    );
    let fig2a = output.figure("fig2a").expect("fig2a");
    let h1 = fig2a.series_named("k=1").unwrap();
    println!(
        "Fig 2(a) restaurant homepages: k=1 reaches 95% at ~{} sites (paper ~10000 of ~1e6)",
        h1.first_x_reaching(0.95).map_or("n/a".into(), |x| format!("{x:.0}")),
    );
    let fig4a = output.figure("fig4a").expect("fig4a");
    let r1 = fig4a.series_named("k=1").unwrap();
    let r2 = fig4a.series_named("k=2").unwrap();
    println!(
        "Fig 4(a) reviews: k=1 90% at ~{} sites (paper >1000); k=2 90% at ~{} (paper >5000)",
        r1.first_x_reaching(0.9).map_or("n/a".into(), |x| format!("{x:.0}")),
        r2.first_x_reaching(0.9).map_or("n/a".into(), |x| format!("{x:.0}")),
    );
    let fig4b = output.figure("fig4b").expect("fig4b");
    println!(
        "Fig 4(b): top-1000 sites hold {:.0}% of review pages (paper ~80%) vs {:.0}% entity coverage (paper ~95%)",
        100.0 * fig4b.series[0].interpolate(1000.0).unwrap_or(0.0),
        100.0 * r1.interpolate(1000.0).unwrap_or(0.0),
    );
    let fig5 = output.figure("fig5").expect("fig5");
    let by_size = fig5.series_named("Order by Size").unwrap();
    let greedy = fig5.series_named("Greedy Set Cover").unwrap();
    let max_gain = greedy
        .points
        .iter()
        .map(|&(t, g)| g - by_size.interpolate(t).unwrap_or(0.0))
        .fold(f64::MIN, f64::max);
    println!("Fig 5: max greedy improvement over by-size = {max_gain:.3} (paper: 'insignificant')");

    // Fig 6 shares need the traffic studies; rebuild (cached seeds).
    let study = Study::new(config.clone());
    print!("Fig 6 search top-20% demand share:");
    for site in StudySite::ALL {
        let t = study.traffic(site);
        print!("  {} {:.0}%", site.slug(), 100.0 * top_share(&t, Channel::Search, 0.2));
    }
    println!("  (paper: imdb >90%, yelp ~60%)");

    for (name, id) in [("yelp", "fig8-yelp"), ("amazon", "fig8-amazon"), ("imdb", "fig8-imdb")] {
        let fig = output.figure(id).expect("fig8 panel");
        let s = fig.series_named("search").unwrap();
        let head = s.points.last().map_or(0.0, |&(_, y)| y);
        let peak = s.points.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max);
        println!("Fig 8 {name}: VA head ratio {head:.2}, peak {peak:.2}");
    }

    println!("\n--- Table 2 (measured) ---");
    let t2 = connectivity::table2(&study);
    println!("{}", t2.to_text());
}
