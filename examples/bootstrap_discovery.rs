//! The §5 connectivity study as a working crawler: build the entity–site
//! graph, measure its components / diameter / robustness, then run the
//! "perfect" set-expansion algorithm from tiny seed sets and verify the
//! paper's d/2 iteration bound.
//!
//! Run with `cargo run --release --example bootstrap_discovery [scale]`.

use webstruct::core::bootstrap::bootstrap_expansion;
use webstruct::core::cache::Study;
use webstruct::core::experiments::connectivity::{build_graph, graph_metrics};
use webstruct::core::study::StudyConfig;
use webstruct::corpus::domain::{Attribute, Domain};
use webstruct::graph::robustness_sweep;
use webstruct::util::ids::EntityId;
use webstruct::util::rng::{Seed, Xoshiro256};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    println!("== bootstrap discovery (scale {scale}) ==\n");
    let study = Study::new(StudyConfig::default().with_scale(scale));
    let domain = Domain::Restaurants;
    let attr = Attribute::Phone;

    let metrics = graph_metrics(&study, domain, attr);
    println!(
        "entity–site graph ({domain}, {attr}): avg {:.0} sites/entity, diameter {}{}, {} components, largest holds {:.2}% of entities",
        metrics.avg_sites_per_entity,
        metrics.diameter,
        if metrics.diameter_exact { "" } else { "+" },
        metrics.n_components,
        metrics.pct_in_largest,
    );
    let bound = (metrics.diameter as usize).div_ceil(2);
    println!("⇒ a perfect set-expansion crawler needs at most d/2 = {bound} iterations\n");

    let graph = build_graph(&study, domain, attr);
    let mut rng = Xoshiro256::from_seed(Seed::DEFAULT.derive("seeds"));
    for n_seeds in [1usize, 3, 10] {
        let seeds: Vec<EntityId> = (0..n_seeds)
            .map(|_| EntityId::new(rng.u64_below(graph.n_entities() as u64) as u32))
            .collect();
        let result = bootstrap_expansion(&graph, &seeds);
        println!(
            "seeds={n_seeds:>2}: {} iterations, {} sites discovered, recall {:.2}% of present entities{}",
            result.iterations,
            result.sites_found,
            100.0 * result.recall(&graph),
            if result.iterations <= bound + 1 { "  (within the d/2 bound)" } else { "  (!! exceeded bound)" },
        );
    }

    // Robustness: does discovery survive without the head aggregators?
    println!("\nrobustness to removing the top-k sites:");
    let sweep = robustness_sweep(&graph, 10);
    for p in sweep.iter().step_by(2) {
        println!(
            "  k={:>2}: largest component keeps {:.2}% of the original entities ({} components)",
            p.removed,
            100.0 * p.fraction_of_original,
            p.stats.n_components,
        );
    }
    println!(
        "\nConclusion (paper §5): content redundancy keeps the graph connected even\nwithout the top sites, so bootstrapping-based extraction is robust to seeds."
    );
}
