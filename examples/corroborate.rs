//! The value of redundancy (extension of §2/§3.3): fuse noisy per-source
//! phone claims and measure how accuracy grows with the number of
//! corroborating sites — the reason the paper's k-coverage analysis goes
//! beyond k = 1.
//!
//! Run with `cargo run --release --example corroborate [scale]`.

use webstruct::core::cache::Study;
use webstruct::core::experiments::redundancy;
use webstruct::core::study::StudyConfig;
use webstruct::corpus::domain::Domain;
use webstruct::fuse::{evaluate, ClaimSet, ErrorModel, FirstClaim, MajorityVote};
use webstruct::util::rng::Seed;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    println!("== corroborated extraction (scale {scale}) ==\n");
    let study = Study::new(StudyConfig::default().with_scale(scale));

    let fig = redundancy::redundancy_experiment(&study, Domain::Restaurants);
    println!("{}", fig.ascii_plot(72, 16));
    for r in redundancy::fusion_reports(&study, Domain::Restaurants) {
        println!(
            "  {:<16} overall accuracy {:.4} ({} entities claimed)",
            r.strategy, r.accuracy, r.entities_claimed
        );
    }

    // Sensitivity: how bad can sources get before majority voting cracks?
    println!("\nsensitivity to source quality (majority vote, Banks):");
    let built = study.domain(Domain::Banks);
    for niche_error in [0.1, 0.3, 0.5, 0.7] {
        let model = ErrorModel {
            aggregator: niche_error / 4.0,
            regional: niche_error / 2.0,
            niche: niche_error,
        };
        let claims = ClaimSet::generate(&built.catalog, &built.web, &model, 0.2, Seed(7));
        let majority = evaluate(&MajorityVote, &claims, 10);
        let first = evaluate(&FirstClaim, &claims, 10);
        println!(
            "  niche error {niche_error:.1}: majority {:.4} vs single-source {:.4}",
            majority.accuracy, first.accuracy
        );
    }
    println!(
        "\nConclusion: redundancy across the tail (what k-coverage measures) converts\n\
         noisy per-site extractions into a reliable database — the paper's rationale\n\
         for studying k-coverage with k up to 10."
    );
}
