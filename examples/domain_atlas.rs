//! The atlas: every domain of Table 1 surveyed in one run — corpus
//! statistics, coverage milestones, graph structure, and crawlability.
//!
//! Run with `cargo run --release --example domain_atlas [scale]`.

use webstruct::core::cache::Study;
use webstruct::core::experiments::connectivity::graph_metrics;
use webstruct::corpus::domain::{Attribute, Domain};
use webstruct::corpus::stats::web_stats;
use webstruct::coverage::k_coverage;
use webstruct::graph::{entity_degrees, sampled_avg_entity_distance, BipartiteGraph};
use webstruct::util::rng::Seed;
use webstruct::util::Table;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!("== domain atlas (scale {scale}) ==\n");
    let study = Study::new(
        webstruct::core::study::StudyConfig::default().with_scale(scale),
    );

    let mut table = Table::new(
        "Nine domains at a glance (identifying attribute)",
        &[
            "Domain",
            "Entities",
            "Sites",
            "Mentions",
            "Gini",
            "Top-10 cov",
            "Diameter",
            "Avg dist",
            "% largest",
        ],
    );
    for domain in Domain::ALL {
        let built = study.domain(domain);
        let attr = if domain == Domain::Books {
            Attribute::Isbn
        } else {
            Attribute::Phone
        };
        let stats = web_stats(&built.web, attr);
        let lists = built.occurrence_lists(attr, &study.config);
        let cov = k_coverage(built.catalog.len(), &lists, 1).expect("valid corpus");
        let graph =
            BipartiteGraph::from_occurrences(built.catalog.len(), &lists).expect("valid ids");
        let metrics = graph_metrics(&study, domain, attr);
        let avg_dist = sampled_avg_entity_distance(&graph, 8, Seed::DEFAULT)
            .map_or("n/a".to_string(), |d| format!("{d:.2}"));
        table.push_row(vec![
            domain.display_name().to_string(),
            built.catalog.len().to_string(),
            stats.nonempty_sites.to_string(),
            stats.mentions.to_string(),
            format!("{:.2}", stats.site_gini),
            format!("{:.2}", cov.coverage_at(1, 10)),
            metrics.diameter.to_string(),
            avg_dist,
            format!("{:.2}", metrics.pct_in_largest),
        ]);
        let deg = entity_degrees(&graph);
        println!(
            "{:<18} entity degree: mean {:.1}, max {}, tail exponent {}",
            domain.display_name(),
            deg.mean,
            deg.max,
            deg.tail_exponent
                .map_or("n/a".to_string(), |a| format!("{a:.2}")),
        );
    }
    println!("\n{}", table.to_text());
    println!(
        "Reading: high Gini = mention mass concentrated on aggregators; small\n\
         diameters + >99% largest components = the §5 connectivity findings; yet\n\
         top-10 coverage < 1 everywhere = the §3 tail-extraction motivation."
    );
}
