//! # webstruct
//!
//! A full reproduction of **“An Analysis of Structured Data on the Web”**
//! (Nilesh Dalvi, Ashwin Machanavajjhala, Bo Pang; PVLDB 5(7), 2012) as a
//! Rust workspace: a synthetic web corpus standing in for the paper's
//! proprietary Yahoo! data, a real extraction pipeline (phone/ISBN/href
//! scanners plus a Naïve Bayes review classifier), and the complete set of
//! spread / tail-value / connectivity analyses, regenerating every table
//! and figure of the paper.
//!
//! This umbrella crate re-exports the member crates under stable names:
//!
//! * [`util`] — deterministic RNG, hashing, sampling, statistics, reports;
//! * [`corpus`] — entity catalogs, the generative web model, page text;
//! * [`extract`] — identifier scanners and the extraction pipeline;
//! * [`coverage`] — k-coverage, greedy set cover, aggregate coverage;
//! * [`graph`] — the entity–site bipartite graph analyses;
//! * [`demand`] — traffic simulation and value-add analyses;
//! * [`fuse`] — truth fusion for corroborated extraction;
//! * [`crawl`] — bootstrapping-based source discovery;
//! * [`dedup`] — record deduplication for extracted listings;
//! * [`core`] — the experiment registry (`run_all` regenerates the paper);
//! * [`serve`] — the std-only HTTP serving layer and traffic replay.
//!
//! ## Example
//!
//! ```
//! use webstruct::core::study::StudyConfig;
//! use webstruct::core::runner::run_all;
//!
//! // Regenerate every table and figure at a fast test scale.
//! let out = run_all(&StudyConfig::quick());
//! assert_eq!(out.figures.len(), 33);
//! assert_eq!(out.tables.len(), 2);
//! ```

pub use webstruct_core as core;
pub use webstruct_corpus as corpus;
pub use webstruct_coverage as coverage;
pub use webstruct_demand as demand;
pub use webstruct_extract as extract;
pub use webstruct_fuse as fuse;
pub use webstruct_crawl as crawl;
pub use webstruct_dedup as dedup;
pub use webstruct_graph as graph;
pub use webstruct_serve as serve;
pub use webstruct_util as util;

/// The version of the workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
