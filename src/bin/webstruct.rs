//! `webstruct` — command-line front end for the reproduction.
//!
//! ```text
//! webstruct list                         list every artifact id
//! webstruct reproduce [SCALE] [OUTDIR]   regenerate all tables & figures
//! webstruct figure <ID> [SCALE]          print one figure (ASCII + .dat)
//! webstruct table <1|2> [SCALE]          print one table
//! webstruct stream [SCALE] [DIR] [MB]    out-of-core render → shards → extract
//! webstruct scrub [DIR]                  re-hash every shard against MANIFEST.wsm
//! webstruct repair [SCALE] [DIR] [MB]    quarantine corrupt shards, re-render
//! webstruct epoch [DOMAIN] [SCALE] [DIR] [FRAC] [KB]  mutate sites, re-run dirty slice
//! webstruct serve [DOMAIN] [SCALE] [DIR] [PORT]  HTTP server over the extracted web
//! webstruct replay [DOMAIN] [SCALE] [DIR] [N] [CLIENTS]  traffic replay against a local server
//! webstruct http <METHOD> <URL>          one-shot HTTP client (smoke tests)
//! webstruct bootstrap [DOMAIN] [SCALE]   run the set-expansion crawler
//! webstruct redundancy [DOMAIN] [SCALE]  fusion accuracy vs. redundancy
//! webstruct tail-users [SCALE]           user-level tail analysis
//! webstruct precision [NOISE] [SCALE]    §3.5 false-match study
//! ```

use webstruct::core::bootstrap::bootstrap_expansion;
use webstruct::core::cache::Study;
use webstruct::core::experiments::{ablations, connectivity, discovery, linkage, open_extraction, redundancy, stability, table1, tail_value};
use webstruct::core::runner::{run_all, run_extensions, write_outputs};
use webstruct::core::study::StudyConfig;
use webstruct::corpus::domain::{Attribute, Domain};
use webstruct::extract::phone_precision_study;
use webstruct::util::ids::EntityId;
use webstruct::util::obs::{self, TraceMode};
use webstruct::util::rng::{Seed, Xoshiro256};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `webstruct trace <cmd> ...` wraps any command with JSON tracing;
    // `WEBSTRUCT_TRACE=json|pretty|off` picks the sink either way.
    let forced_trace = args.first().map(String::as_str) == Some("trace");
    if forced_trace {
        args.remove(0);
    }
    let mut mode = obs::init_trace_from_env();
    if forced_trace && mode == TraceMode::Off {
        mode = TraceMode::Json;
        obs::trace().set_enabled(true);
    }
    let command = args.first().map(String::as_str).unwrap_or("help");
    let command_line = args.join(" ");
    let code = match command {
        "list" => cmd(list),
        "reproduce" | "run" => reproduce(&args[1..]),
        "extensions" => extensions(&args[1..]),
        "faults" => cmd(|| faults_cmd(&args[1..])),
        "figure" => cmd(|| figure(&args[1..])),
        "table" => cmd(|| table(&args[1..])),
        "stream" => stream_cmd(&args[1..]),
        "scrub" => scrub_cmd(&args[1..]),
        "repair" => repair_cmd(&args[1..]),
        "epoch" => epoch_cmd(&args[1..]),
        "serve" => serve_cmd(&args[1..]),
        "replay" => replay_cmd(&args[1..]),
        "http" => http_cmd(&args[1..]),
        "bootstrap" => cmd(|| bootstrap(&args[1..])),
        "discover" => cmd(|| discover(&args[1..])),
        "dedup" => cmd(|| dedup_cmd(&args[1..])),
        "open-extract" => cmd(|| open_extract_cmd(&args[1..])),
        "ablations" => cmd(|| ablations_cmd(&args[1..])),
        "stability" => cmd(|| stability_cmd(&args[1..])),
        "redundancy" => cmd(|| redundancy_cmd(&args[1..])),
        "tail-users" => cmd(|| tail_users(&args[1..])),
        "precision" => cmd(|| precision(&args[1..])),
        "help" | "--help" | "-h" => cmd(help),
        other => {
            eprintln!("unknown command '{other}'\n");
            help();
            std::process::exit(2);
        }
    };
    if mode.is_on() {
        emit_trace_report(mode, &command_line, &report_dir(&args));
    }
    if code != 0 {
        std::process::exit(code);
    }
}

/// Run a plain command that always succeeds at the process level.
fn cmd(f: impl FnOnce()) -> i32 {
    f();
    0
}

/// Where a traced run's `RUN_REPORT.json` belongs: the command's own
/// output directory when it has one, `artifacts/` otherwise.
fn report_dir(args: &[String]) -> String {
    match args.first().map(String::as_str) {
        Some("reproduce" | "run") => args.get(2).cloned().unwrap_or_else(|| "artifacts".into()),
        Some("extensions") => args
            .get(2)
            .cloned()
            .unwrap_or_else(|| "artifacts/extensions".into()),
        // Store commands report next to the store they touched, so the
        // scrub span and store.* counters land with the shards.
        Some("stream") => args.get(2).cloned().unwrap_or_else(|| "artifacts/shards".into()),
        Some("scrub") => args.get(1).cloned().unwrap_or_else(|| "artifacts/shards".into()),
        Some("repair") => args.get(2).cloned().unwrap_or_else(|| "artifacts/shards".into()),
        Some("epoch") => args.get(3).cloned().unwrap_or_else(|| "artifacts/epoch".into()),
        Some("serve" | "replay") => args
            .iter()
            .filter(|a| *a != "--watch")
            .nth(3)
            .cloned()
            .unwrap_or_else(|| "artifacts/serve".into()),
        _ => "artifacts".into(),
    }
}

/// Write `RUN_REPORT.json` (always) plus the mode-specific sink: a
/// chrome-trace `trace.json` for `json`, a span tree on stderr for
/// `pretty`. Reporting is best-effort — a failed write never fails the
/// run it describes.
fn emit_trace_report(mode: TraceMode, command: &str, dir: &str) {
    let dir = std::path::Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("trace: could not create {}: {e}", dir.display());
        return;
    }
    // Derive the cache hit-rate gauge (and force-register the
    // invalidations counter) so every RUN_REPORT.json carries them.
    webstruct::core::publish_cache_hit_rate();
    let obs = obs::global();
    let report = obs::run_report_json(command, webstruct::util::par::num_threads(), obs);
    let report_path = dir.join("RUN_REPORT.json");
    match std::fs::write(&report_path, report) {
        Ok(()) => eprintln!("trace: wrote {}", report_path.display()),
        Err(e) => eprintln!("trace: could not write {}: {e}", report_path.display()),
    }
    match mode {
        TraceMode::Json => {
            let trace_path = dir.join("trace.json");
            match std::fs::write(&trace_path, obs.trace.to_chrome_json()) {
                Ok(()) => eprintln!("trace: wrote {} (chrome://tracing)", trace_path.display()),
                Err(e) => eprintln!("trace: could not write {}: {e}", trace_path.display()),
            }
        }
        TraceMode::Pretty => eprint!("{}", obs.trace.to_pretty()),
        TraceMode::Off => {}
    }
}

fn help() {
    println!(
        "webstruct — reproduction of 'An Analysis of Structured Data on the Web' (VLDB 2012)\n\
         \n\
         USAGE:\n\
         \twebstruct list\n\
         \twebstruct reproduce [SCALE] [OUTDIR]   (alias: run)\n\
         \twebstruct trace <CMD> [ARGS...]        run any command with tracing on\n\
         \t                                       (WEBSTRUCT_TRACE=json|pretty|off;\n\
         \t                                       emits RUN_REPORT.json + trace.json)\n\
         \twebstruct extensions [SCALE] [OUTDIR] extension figures/tables (incl. discovery under failure)\n\
         \twebstruct faults [DOMAIN] [SCALE]     discovery under injected failure rates\n\
         \twebstruct figure <ID> [SCALE]      e.g. fig1a, fig4b, fig6-cdf-search, fig8-imdb\n\
         \twebstruct table <1|2> [SCALE]\n\
         \twebstruct stream [SCALE] [DIR] [SHARD_MB]  render to page shards, extract out-of-core\n\
         \twebstruct scrub [DIR]                 re-hash every shard against MANIFEST.wsm\n\
         \twebstruct repair [SCALE] [DIR] [SHARD_MB]  quarantine corrupt shards and re-render\n\
         \twebstruct epoch [DOMAIN] [SCALE] [DIR] [FRACTION] [SHARD_KB]  incremental\n\
         \t                                      re-run after mutating FRACTION of sites\n\
         \twebstruct serve [--watch] [DOMAIN] [SCALE] [DIR] [PORT]  serve the extracted\n\
         \t                                      web over HTTP (entity lookup, coverage,\n\
         \t                                      demand curves, figure CSVs, /metrics;\n\
         \t                                      POST /shutdown stops; with --watch,\n\
         \t                                      POST /admin/epoch hot-swaps a new epoch)\n\
         \twebstruct replay [DOMAIN] [SCALE] [DIR] [N] [CLIENTS]  replay the simulated\n\
         \t                                      population against a local server\n\
         \twebstruct http <METHOD> <URL> [ETAG]  one-shot HTTP client (exit 0 on 2xx/304;\n\
         \t                                      ETAG is sent as If-None-Match)\n\
         \twebstruct bootstrap [DOMAIN] [SCALE]\n\
         \twebstruct discover [DOMAIN] [SCALE]   compare frontier policies + seed robustness\n\
         \twebstruct dedup [DOMAIN] [SCALE]      deduplicate noisy listing records\n\
         \twebstruct open-extract [DOMAIN] [SITES] [SCALE]  catalog-free database build\n\
         \twebstruct ablations [DOMAIN] [SCALE]  model-ingredient ablations\n\
         \twebstruct stability [SEEDS] [SCALE]   milestone variance across seeds\n\
         \twebstruct redundancy [DOMAIN] [SCALE]\n\
         \twebstruct tail-users [SCALE]\n\
         \twebstruct precision [NOISE_PER_PAGE] [SCALE]\n\
         \n\
         DOMAINS: {}",
        Domain::ALL
            .iter()
            .map(|d| d.slug())
            .collect::<Vec<_>>()
            .join(", ")
    );
}

fn parse_scale(args: &[String], index: usize, default: f64) -> f64 {
    match args.get(index) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("warning: could not parse '{raw}' as a number, using {default}");
            default
        }),
    }
}

fn parse_domain(args: &[String], index: usize) -> Domain {
    let slug = args.get(index).map(String::as_str).unwrap_or("restaurants");
    Domain::ALL
        .iter()
        .copied()
        .find(|d| d.slug() == slug)
        .unwrap_or_else(|| {
            eprintln!("unknown domain '{slug}', using restaurants");
            Domain::Restaurants
        })
}

fn list() {
    let out = run_all(&StudyConfig::quick());
    println!("figures:");
    for f in &out.figures {
        println!("  {:<18} {}", f.id, f.title);
    }
    println!("tables:\n  table1             {}", out.tables[0].title);
    println!("  table2             {}", out.tables[1].title);
    println!("extensions: redundancy, tail-users, precision, bootstrap, discover, faults, dedup, open-extract, ablations, stability");
}

fn reproduce(args: &[String]) -> i32 {
    let scale = parse_scale(args, 0, 1.0);
    let outdir = args.get(1).cloned().unwrap_or_else(|| "artifacts".into());
    let config = StudyConfig::default().with_scale(scale);
    let t0 = std::time::Instant::now();
    let out = run_all(&config);
    println!(
        "generated {} figures, {} tables in {:.1?}",
        out.figures.len(),
        out.tables.len(),
        t0.elapsed()
    );
    for failure in &out.failures {
        eprintln!("DEGRADED: family '{}' failed: {}", failure.family, failure.error);
    }
    write_outputs(std::path::Path::new(&outdir), &out).expect("write artifacts");
    println!("written to {outdir}/");
    i32::from(!out.failures.is_empty())
}

fn extensions(args: &[String]) -> i32 {
    let scale = parse_scale(args, 0, 1.0);
    let outdir = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "artifacts/extensions".into());
    let config = StudyConfig::default().with_scale(scale);
    let t0 = std::time::Instant::now();
    let out = run_extensions(&config);
    println!(
        "generated {} figures, {} tables in {:.1?}",
        out.figures.len(),
        out.tables.len(),
        t0.elapsed()
    );
    for failure in &out.failures {
        eprintln!("DEGRADED: family '{}' failed: {}", failure.family, failure.error);
    }
    write_outputs(std::path::Path::new(&outdir), &out).expect("write artifacts");
    println!("written to {outdir}/");
    i32::from(!out.failures.is_empty())
}

fn faults_cmd(args: &[String]) {
    let domain = parse_domain(args, 0);
    let scale = parse_scale(args, 1, 0.25);
    let study = Study::new(StudyConfig::default().with_scale(scale));
    let (fig, table) = discovery::discovery_under_failure(&study, domain, 2_000);
    println!("{}", fig.ascii_plot(76, 16));
    println!("{}", table.to_text());
    println!(
        "(every retry and timeout charges the fetch budget; breakers stop\n\
         spend on dead sites — the dynamic counterpart of Figure 9's\n\
         site-removal sweep)"
    );
}

fn figure(args: &[String]) {
    let Some(id) = args.first() else {
        eprintln!("usage: webstruct figure <ID> [SCALE]");
        std::process::exit(2);
    };
    let scale = parse_scale(args, 1, 0.25);
    let out = run_all(&StudyConfig::default().with_scale(scale));
    match out.figure(id) {
        Some(f) => {
            println!("{}", f.ascii_plot(76, 20));
            println!("{}", f.to_dat());
        }
        None => {
            eprintln!("no figure '{id}'; try `webstruct list`");
            std::process::exit(1);
        }
    }
}

fn table(args: &[String]) {
    let which = args.first().map(String::as_str).unwrap_or("2");
    let scale = parse_scale(args, 1, 0.25);
    match which {
        "1" => println!("{}", table1().to_text()),
        "2" => {
            let study = Study::new(StudyConfig::default().with_scale(scale));
            println!("{}", connectivity::table2(&study).to_text());
        }
        other => {
            eprintln!("no table '{other}' (the paper has tables 1 and 2)");
            std::process::exit(1);
        }
    }
}

/// The out-of-core pipeline end to end: render the corpus into
/// length-prefixed page shards on disk, then extract straight off the
/// shard files — no rendered page ever resident beyond the shard being
/// read. Prints the same headline occurrence counts the in-memory path
/// would, so the two are easy to eyeball against each other.
fn stream_cmd(args: &[String]) -> i32 {
    use webstruct::corpus::page::PageConfig;
    use webstruct::corpus::ShardStore;
    use webstruct::core::study::DomainStudy;
    use webstruct::extract::{train_review_classifier, Extractor};

    let scale = parse_scale(args, 0, 0.1);
    let dir = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "artifacts/shards".into());
    let shard_mb: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let config = StudyConfig::default().with_scale(scale);
    let study = DomainStudy::generate(Domain::Restaurants, &config);
    let clf = train_review_classifier(config.seed.derive("nb"), 300)
        .expect("training set is balanced by construction");
    let extractor = Extractor::new(&study.catalog).with_review_classifier(clf);

    let t0 = std::time::Instant::now();
    let (store, recovery) = match ShardStore::write_resumable(
        std::path::Path::new(&dir),
        &study.web,
        &study.catalog,
        &PageConfig::default(),
        config.seed.derive("render"),
        shard_mb.max(1) * 1024 * 1024,
    ) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("stream: could not write shards under {dir}: {e}");
            return 1;
        }
    };
    let write_secs = t0.elapsed().as_secs_f64();
    if recovery.shards_reused > 0 || recovery.shards_quarantined > 0 || recovery.tmp_removed > 0 {
        println!(
            "recovered previous run: {} shard(s) reused, {} re-rendered, \
             {} quarantined, {} temp file(s) swept",
            recovery.shards_reused,
            recovery.shards_rendered,
            recovery.shards_quarantined,
            recovery.tmp_removed,
        );
    }
    surface_degradation(std::path::Path::new(&dir), "stream", &recovery);

    let threads = webstruct::util::par::num_threads();
    let t1 = std::time::Instant::now();
    let extracted = match extractor.extract_store(&store, study.web.n_sites(), threads) {
        Ok(extracted) => extracted,
        Err(e) => {
            eprintln!("stream: shard extraction failed: {e}");
            return 1;
        }
    };
    let extract_secs = t1.elapsed().as_secs_f64();
    let mb = extracted.bytes_rendered as f64 / 1e6;
    println!(
        "streamed scale {scale} through {} shards under {dir}/:\n\
         \trendered  {} pages / {:.1} MB in {:.2}s ({:.1} MB/s)\n\
         \textracted {} phone and {} review occurrences with {threads} worker(s)\n\
         \t          in {:.2}s ({:.1} MB/s); peak RSS {:.1} MB",
        store.len(),
        extracted.pages_processed,
        mb,
        write_secs,
        if write_secs > 0.0 { mb / write_secs } else { 0.0 },
        extracted.total_occurrences(Attribute::Phone),
        extracted.total_occurrences(Attribute::Review),
        extract_secs,
        if extract_secs > 0.0 { mb / extract_secs } else { 0.0 },
        webstruct::util::obs::peak_rss_bytes() as f64 / 1e6,
    );
    0
}

/// Write (or clear) `DEGRADED.md` in the store directory: quarantined
/// shards degrade the run without aborting it, and the marker file makes
/// that loud for whoever picks up the artifacts.
fn surface_degradation(
    dir: &std::path::Path,
    command: &str,
    recovery: &webstruct::corpus::RecoveryReport,
) {
    let marker = dir.join("DEGRADED.md");
    if recovery.shards_quarantined == 0 {
        // A clean run supersedes any earlier degradation note.
        let _ = std::fs::remove_file(&marker);
        return;
    }
    let body = format!(
        "# Degraded store recovery\n\n\
         `webstruct {command}` found damage in this shard store and repaired it\n\
         instead of aborting. The store is now complete and verified, but the\n\
         original bytes of the affected shards are preserved under `.quarantine/`\n\
         for post-mortem.\n\n\
         | metric | count |\n|---|---|\n\
         | shards planned | {} |\n\
         | shards reused | {} |\n\
         | shards re-rendered | {} |\n\
         | shards quarantined | {} |\n\
         | temp files swept | {} |\n",
        recovery.shards_total,
        recovery.shards_reused,
        recovery.shards_rendered,
        recovery.shards_quarantined,
        recovery.tmp_removed,
    );
    match std::fs::write(&marker, body) {
        Ok(()) => eprintln!(
            "DEGRADED: {} shard(s) quarantined and re-rendered; see {}",
            recovery.shards_quarantined,
            marker.display()
        ),
        Err(e) => eprintln!("could not write {}: {e}", marker.display()),
    }
}

/// Full integrity pass over an existing store: re-hash and re-frame every
/// shard against `MANIFEST.wsm`. Exit code 0 = clean, 1 = damage found,
/// 2 = no usable manifest.
fn scrub_cmd(args: &[String]) -> i32 {
    use webstruct::corpus::ShardStore;

    let dir = args
        .first()
        .cloned()
        .unwrap_or_else(|| "artifacts/shards".into());
    let report = match ShardStore::scrub_dir(std::path::Path::new(&dir)) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("scrub: cannot read store under {dir}: {e}");
            return 2;
        }
    };
    println!("scrub of {dir}/:");
    print!("{}", report.to_text());
    if report.is_clean() {
        println!("store is clean: every shard digest verified against MANIFEST.wsm");
        0
    } else {
        println!("store is damaged — run `webstruct repair` to quarantine and re-render");
        1
    }
}

/// Quarantine-and-repair an existing store: corrupt or stray shards move
/// to `.quarantine/` and are re-rendered from the seed, converging to the
/// same bytes a cold write would have produced.
fn repair_cmd(args: &[String]) -> i32 {
    use webstruct::corpus::page::PageConfig;
    use webstruct::corpus::ShardStore;
    use webstruct::core::study::DomainStudy;

    let scale = parse_scale(args, 0, 0.1);
    let dir = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "artifacts/shards".into());
    let shard_mb: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let config = StudyConfig::default().with_scale(scale);
    let study = DomainStudy::generate(Domain::Restaurants, &config);
    let t0 = std::time::Instant::now();
    let (store, recovery) = match ShardStore::repair(
        std::path::Path::new(&dir),
        &study.web,
        &study.catalog,
        &PageConfig::default(),
        config.seed.derive("render"),
        shard_mb.max(1) * 1024 * 1024,
    ) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("repair: could not rebuild store under {dir}: {e}");
            return 1;
        }
    };
    println!(
        "repaired {dir}/ in {:.2}s: {} shard(s) verified and kept, {} re-rendered,\n\
         \t{} quarantined to .quarantine/, {} temp file(s) swept; store now has {} shard(s)",
        t0.elapsed().as_secs_f64(),
        recovery.shards_reused,
        recovery.shards_rendered,
        recovery.shards_quarantined,
        recovery.tmp_removed,
        store.len(),
    );
    surface_degradation(std::path::Path::new(&dir), "repair", &recovery);
    0
}

/// Incremental recomputation demo: bring the store to epoch 0 (cold if
/// the directory is empty, warm resume otherwise), mutate a fraction of
/// the corpus's sites, and re-run — only the dirty shards re-render and
/// re-extract; every clean shard's extraction replays from its
/// content-addressed `ext-*.wse` snapshot.
fn epoch_cmd(args: &[String]) -> i32 {
    use webstruct::core::epoch::Epoch;

    let domain = parse_domain(args, 0);
    let scale = parse_scale(args, 1, 0.05);
    let dir = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "artifacts/epoch".into());
    let fraction = parse_scale(args, 3, 0.01);
    let shard_kb: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(8);
    let threads = webstruct::util::par::num_threads();
    let config = StudyConfig::default().with_scale(scale);
    // Small shards (few sites per shard) so a small site mutation
    // dirties a small *fraction* of the shard count.
    let mut epoch = Epoch::new(domain, config).with_shard_bytes(shard_kb.max(1) * 1024);

    let t0 = std::time::Instant::now();
    let base = match epoch.run(std::path::Path::new(&dir), threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("epoch: baseline run failed under {dir}: {e}");
            return 1;
        }
    };
    let base_secs = t0.elapsed().as_secs_f64();
    println!(
        "epoch {}: {} shard(s), {} cache hit(s), {} miss(es) in {:.2}s\n\
         \toutput digest {}",
        base.epoch,
        base.recovery.shards_total,
        base.cache_hits,
        base.cache_misses,
        base_secs,
        base.digest_hex(),
    );

    let mutated = epoch.mutate(fraction, Seed::DEFAULT.derive("epoch-cli"));
    println!("mutated {mutated} site(s) ({:.1}% of the corpus)", 100.0 * fraction);

    let t1 = std::time::Instant::now();
    let warm = match epoch.run(std::path::Path::new(&dir), threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("epoch: incremental run failed under {dir}: {e}");
            return 1;
        }
    };
    let warm_secs = t1.elapsed().as_secs_f64();
    println!(
        "epoch {}: re-rendered {} stale shard(s), replayed {} from cache \
         ({} recomputed, {} invalidated) in {:.2}s\n\
         \toutput digest {}",
        warm.epoch,
        warm.recovery.shards_rendered,
        warm.cache_hits,
        warm.cache_misses,
        warm.cache_invalidations,
        warm_secs,
        warm.digest_hex(),
    );
    if base_secs > 0.0 {
        println!(
            "incremental cost: {:.1}% of the epoch-0 wall clock",
            100.0 * warm_secs / base_secs
        );
    }
    0
}

/// Serve the extracted web over HTTP until a client POSTs `/shutdown`.
/// The state is built from (or warms) the epoch store under DIR, so a
/// second boot replays cached extraction snapshots instead of
/// re-extracting.
fn serve_cmd(args: &[String]) -> i32 {
    use std::sync::Arc;
    use webstruct::core::epoch::Epoch;
    use webstruct::serve::{
        EpochManager, ServeConfig, ServeEpoch, ServeState, Server, SharedServing,
    };

    let watch = args.iter().any(|a| a == "--watch");
    let args: Vec<String> = args.iter().filter(|a| *a != "--watch").cloned().collect();
    let domain = parse_domain(&args, 0);
    let scale = parse_scale(&args, 1, 0.05);
    let dir = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "artifacts/serve".into());
    let port: u16 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0);
    let threads = webstruct::util::par::num_threads();
    let config = StudyConfig::default().with_scale(scale);

    let t0 = std::time::Instant::now();
    let epoch = Epoch::new(domain, config);
    let state = match ServeState::from_epoch(&epoch, std::path::Path::new(&dir), threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: could not build state under {dir}: {e}");
            return 1;
        }
    };
    println!(
        "built serving state for {domain} (scale {scale}) in {:.2}s: \
         {} entities, {} sites, epoch {} (digest {})",
        t0.elapsed().as_secs_f64(),
        state.catalog.len(),
        state.n_sites(),
        state.report.epoch,
        state.report.digest_hex(),
    );
    let serve_config = ServeConfig {
        threads,
        ..ServeConfig::default()
    };
    let shared = Arc::new(SharedServing::new(ServeEpoch::new(Arc::new(state))));
    let manager = watch.then(|| {
        Arc::new(EpochManager::new(
            epoch,
            std::path::PathBuf::from(&dir),
            threads,
        ))
    });
    let server = match Server::start_with(
        shared,
        manager,
        &serve_config,
        &format!("127.0.0.1:{port}"),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: could not bind 127.0.0.1:{port}: {e}");
            return 1;
        }
    };
    println!(
        "serving on http://{} with {threads} worker(s); POST /shutdown to stop{}",
        server.local_addr(),
        if watch {
            "; POST /admin/epoch hot-swaps the next epoch"
        } else {
            ""
        },
    );
    let stats = server.join();
    println!(
        "shut down: {} connection(s) ({} clean, {} timeout, {} error), \
         {} request(s), {} parse error(s), {}/{}/{}/{} 2xx/3xx/4xx/5xx, \
         cache {} hit(s) {} miss(es) {} revalidation(s) {} swap(s), \
         p50 {}us p99 {}us",
        stats.accepted,
        stats.closed_clean,
        stats.closed_timeout,
        stats.closed_error,
        stats.requests,
        stats.parse_errors,
        stats.resp_2xx,
        stats.resp_3xx,
        stats.resp_4xx,
        stats.resp_5xx,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_revalidations,
        stats.cache_swaps,
        stats.latency_percentile_us(0.50),
        stats.latency_percentile_us(0.99),
    );
    if stats.is_consistent() {
        0
    } else {
        eprintln!("serve: accounting invariant violated: {stats:?}");
        1
    }
}

/// Boot an in-process server, replay the simulated population against it
/// over real sockets, and print the latency/throughput report.
fn replay_cmd(args: &[String]) -> i32 {
    use std::sync::Arc;
    use webstruct::demand::model::{StudySite, TrafficConfig};
    use webstruct::demand::traffic::RequestPlan;
    use webstruct::serve::{replay, ReplayOptions, ServeConfig, ServeState, Server};

    let domain = parse_domain(args, 0);
    let scale = parse_scale(args, 1, 0.05);
    let dir = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "artifacts/serve".into());
    let requests: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let clients: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(4);
    let threads = webstruct::util::par::num_threads();
    let config = StudyConfig::default().with_scale(scale);
    let seed = config.seed;

    let state = match ServeState::build(domain, config, std::path::Path::new(&dir), threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("replay: could not build state under {dir}: {e}");
            return 1;
        }
    };
    let n_entities = state.catalog.len();
    let serve_config = ServeConfig {
        threads,
        ..ServeConfig::default()
    };
    let server = match Server::start(Arc::new(state), &serve_config, "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("replay: could not bind an ephemeral port: {e}");
            return 1;
        }
    };
    let addr = server.local_addr();
    println!(
        "replaying {requests} request(s) from the simulated population \
         over {clients} client(s) against http://{addr} ({threads} server worker(s))"
    );
    let plan = RequestPlan::new(
        &TrafficConfig::preset(StudySite::Amazon).scaled(scale),
        n_entities,
        seed,
    );
    let report = replay(addr, &plan, &ReplayOptions { clients, requests });
    let _ = webstruct::serve::fetch(addr, "POST", "/shutdown");
    let stats = server.join();
    println!(
        "replay done in {:.2}s:\n\
         \t{} ok, {} rejected, {} transport error(s)\n\
         \t{:.0} req/s, latency p50 {:.2}ms p99 {:.2}ms mean {:.2}ms\n\
         \tresponse digest {}",
        report.wall_secs,
        report.ok,
        report.rejected,
        report.errors,
        report.rps,
        report.p50_ms,
        report.p99_ms,
        report.mean_ms,
        report.digest,
    );
    for slice in &report.epochs {
        let tag = if slice.etag.is_empty() {
            "(untagged)"
        } else {
            slice.etag.as_str()
        };
        println!(
            "\tepoch slice {tag}: {} response(s), digest {}",
            slice.responses, slice.digest
        );
    }
    if stats.is_consistent() {
        0
    } else {
        eprintln!("replay: accounting invariant violated: {stats:?}");
        1
    }
}

/// A one-shot HTTP client for smoke tests: prints the status and body,
/// exits 0 on a 2xx or 304 response. An optional trailing argument is
/// sent as an `If-None-Match` validator.
fn http_cmd(args: &[String]) -> i32 {
    use std::net::ToSocketAddrs;

    let (method, url, inm) = match args {
        [url] => ("GET", url.as_str(), None),
        [method, url] => (method.as_str(), url.as_str(), None),
        [method, url, etag, ..] => (method.as_str(), url.as_str(), Some(etag.as_str())),
        [] => {
            eprintln!("usage: webstruct http [METHOD] <URL> [IF_NONE_MATCH]");
            return 2;
        }
    };
    let Some(rest) = url.strip_prefix("http://") else {
        eprintln!("http: only http:// URLs are supported");
        return 2;
    };
    let (host, target) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    let addr = match host.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(a) => a,
        None => {
            eprintln!("http: could not resolve {host}");
            return 2;
        }
    };
    match webstruct::serve::fetch_with(addr, &method.to_ascii_uppercase(), target, inm) {
        Ok(resp) => {
            if resp.etag.is_empty() {
                eprintln!(
                    "{} {} ({} bytes)",
                    resp.status,
                    resp.content_type,
                    resp.body.len()
                );
            } else {
                eprintln!(
                    "{} {} ({} bytes, etag {})",
                    resp.status,
                    resp.content_type,
                    resp.body.len(),
                    resp.etag
                );
            }
            print!("{}", resp.text());
            i32::from(resp.status / 100 != 2 && resp.status != 304)
        }
        Err(e) => {
            eprintln!("http: request failed: {e}");
            1
        }
    }
}

fn bootstrap(args: &[String]) {
    let domain = parse_domain(args, 0);
    let scale = parse_scale(args, 1, 0.25);
    let study = Study::new(StudyConfig::default().with_scale(scale));
    let attr = if domain == Domain::Books {
        Attribute::Isbn
    } else {
        Attribute::Phone
    };
    let graph = connectivity::build_graph(&study, domain, attr);
    let metrics = connectivity::graph_metrics(&study, domain, attr);
    println!(
        "{domain} / {attr}: diameter {} → crawler bound d/2 = {}",
        metrics.diameter,
        (metrics.diameter as usize).div_ceil(2)
    );
    let mut rng = Xoshiro256::from_seed(Seed::DEFAULT.derive("cli-seeds"));
    for n_seeds in [1usize, 5] {
        let seeds: Vec<EntityId> = (0..n_seeds)
            .map(|_| EntityId::new(rng.u64_below(graph.n_entities() as u64) as u32))
            .collect();
        let r = bootstrap_expansion(&graph, &seeds);
        println!(
            "  seeds={n_seeds}: {} iterations, recall {:.2}%",
            r.iterations,
            100.0 * r.recall(&graph)
        );
    }
}

fn discover(args: &[String]) {
    let domain = parse_domain(args, 0);
    let scale = parse_scale(args, 1, 0.25);
    let study = Study::new(StudyConfig::default().with_scale(scale));
    let fig = discovery::discovery_policies(&study, domain, 2_000);
    println!("{}", fig.ascii_plot(76, 16));
    let r = discovery::discovery_seed_robustness(&study, domain, 20);
    println!(
        "seed robustness: {}/{} random single seeds recovered >=95% of present \
         entities\n(mean recall {:.3}; largest-component ceiling {:.3})",
        r.successes,
        r.trials,
        r.mean_recall,
        r.largest_component_fraction
    );
}

fn ablations_cmd(args: &[String]) {
    let domain = parse_domain(args, 0);
    let scale = parse_scale(args, 1, 0.1);
    let config = StudyConfig::default().with_scale(scale);
    println!("which model ingredient drives which finding ({domain}):\n");
    println!(
        "{:<20} {:>10} {:>10} {:>8} {:>10}",
        "arm", "top10 cov", "k5 final", "comps", "% largest"
    );
    for arm in ablations::ablation_suite(domain, &config) {
        println!(
            "{:<20} {:>10.3} {:>10.3} {:>8} {:>10.2}",
            arm.label,
            arm.top10_coverage,
            arm.k5_final,
            arm.components.n_components,
            100.0 * arm.components.largest_fraction(),
        );
    }
    println!(
        "\nno-aggregators kills the head; no-tail-sites kills corroboration (k=5);\n\
         no-inclusion-floor starves/fragments the tail — each paper finding traces\n\
         to one structural ingredient."
    );
}

fn stability_cmd(args: &[String]) {
    let n_seeds = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5usize);
    let scale = parse_scale(args, 1, 0.1);
    let config = StudyConfig::default().with_scale(scale);
    println!("milestone stability over {n_seeds} independent seeds:\n");
    for s in stability::fig1_stability(&config, n_seeds) {
        println!(
            "  {:<28} mean {:.4} ± {:.4} (cv {:.3})",
            s.label,
            s.mean,
            s.std_dev,
            s.cv()
        );
    }
}

fn open_extract_cmd(args: &[String]) {
    let domain = parse_domain(args, 0);
    let max_sites = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100usize);
    let scale = parse_scale(args, 2, 0.1);
    let study = Study::new(StudyConfig::default().with_scale(scale));
    let r = open_extraction::open_extraction(&study, domain, max_sites);
    println!(
        "open extraction over the {} largest sites of {domain}:\n\
         \traw records extracted   {}\n\
         \tdatabase after dedup    {}\n\
         \ttrue entities on sites  {}\n\
         \tname recall             {:.2}%\n\n\
         No catalog was consulted during extraction — wrappers were induced from\n\
         page templates, phones came from the scanner, identity from the deduper.",
        r.sites_wrapped,
        r.raw_records,
        r.database_size,
        r.true_entities,
        100.0 * r.name_recall,
    );
}

fn dedup_cmd(args: &[String]) {
    let domain = parse_domain(args, 0);
    let scale = parse_scale(args, 1, 0.25);
    let study = Study::new(StudyConfig::default().with_scale(scale));
    println!("{}", linkage::linkage_table(&study, domain).to_text());
}

fn redundancy_cmd(args: &[String]) {
    let domain = parse_domain(args, 0);
    let scale = parse_scale(args, 1, 0.25);
    let study = Study::new(StudyConfig::default().with_scale(scale));
    let fig = redundancy::redundancy_experiment(&study, domain);
    println!("{}", fig.ascii_plot(76, 16));
    for r in redundancy::fusion_reports(&study, domain) {
        println!(
            "  {:<16} overall accuracy {:.4} over {} entities",
            r.strategy, r.accuracy, r.entities_claimed
        );
    }
}

fn tail_users(args: &[String]) {
    let scale = parse_scale(args, 0, 0.25);
    let study = Study::new(StudyConfig::default().with_scale(scale));
    println!("{}", tail_value::user_tail_table(&study).to_text());
    println!(
        "(cf. Goel et al., cited in §4.2: tail items held 13–34% of ratings, yet\n\
         90–95% of users rated tail items at least once)"
    );
}

fn precision(args: &[String]) {
    let noise = parse_scale(args, 0, 3.0);
    let scale = parse_scale(args, 1, 0.1);
    let study = Study::new(StudyConfig::default().with_scale(scale));
    let built = study.domain(Domain::Restaurants);
    let report = phone_precision_study(
        &built.catalog,
        &built.web,
        noise,
        Seed::DEFAULT.derive("precision"),
    );
    println!(
        "phone extraction with {noise} valid-format noise numbers per page:\n\
         \ttruth pairs      {}\n\
         \textracted pairs  {}\n\
         \tfalse positives  {}\n\
         \tunmatched noise  {}\n\
         \tprecision        {:.6}\n\
         \trecall           {:.6}",
        report.truth_pairs,
        report.extracted_pairs,
        report.false_positives,
        report.unmatched_noise,
        report.precision(),
        report.recall()
    );
    println!(
        "\n§3.5's conclusion holds: accidental matches are vanishingly rare, and when\n\
         they occur they only over-estimate head coverage."
    );
}
